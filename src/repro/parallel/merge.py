"""Order-preserving k-way merge of per-partition result streams.

Every tile-pair task yields its result pairs in non-decreasing
distance, so a task's next known distance is a *frontier watermark*:
nothing it will ever emit can be closer than its buffered head.  A
result pair may therefore be released to the consumer only once its
distance is below every live stream's watermark (streams that finished
drop out).  This is the classic watermark condition of ordered stream
merging (cf. the frontier maintenance in *Dynamic Enumeration of
Similarity Joins*, Agarwal et al.).

Equal distances get one extra refinement: the merge gathers the whole
tie group -- every pair at the minimal distance, across all streams --
before emitting any of it, and sorts the group by ``(oid1, oid2)``.
The output order is then the *canonical* total order
``(distance, oid1, oid2)``, identical for every worker count and
partitioning, which is what makes the parallel join's output
deterministic and testable against the sequential algorithm.  Waiting
for the group is safe and cheap: it only requires each live stream's
watermark to move strictly past the tie distance, i.e. at most one
extra buffered element per stream.

The merge is fully incremental: pulling ``K`` results consumes at most
``K`` pairs plus one watermark element from each stream, so ``stop
after K`` costs the same incremental work as the sequential join,
divided across workers.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Iterator, List, Optional, Set

from repro.core.distance_join import JoinResult
from repro.parallel.executor import StreamExecutor, TaskBatch


class _Stream:
    """Parent-side buffer over one task's ordered result stream."""

    __slots__ = ("task_id", "buffer", "done")

    def __init__(self, task_id: int) -> None:
        self.task_id = task_id
        self.buffer: Deque[JoinResult] = deque()
        self.done = False

    @property
    def exhausted(self) -> bool:
        return self.done and not self.buffer

    @property
    def needs_data(self) -> bool:
        return not self.done and not self.buffer


class OrderedStreamMerge:
    """Merge per-task result streams into one globally ordered stream.

    Parameters
    ----------
    executor:
        The :class:`StreamExecutor` driving the worker tasks.
    task_ids:
        Ids of every task feeding the merge.
    batch_size:
        Result pairs per worker round-trip.
    on_batch:
        Callback invoked with every arriving :class:`TaskBatch`
        (counter aggregation hooks in the join layer).
    dedup_outer:
        Semi-join mode: emit only the first (nearest) result for each
        outer object id and drop the rest.
    expected_outer:
        With ``dedup_outer``, the number of distinct outer objects;
        the merge finishes early once all of them have been reported.
    """

    def __init__(
        self,
        executor: StreamExecutor,
        task_ids: List[int],
        batch_size: int,
        on_batch: Optional[Callable[[TaskBatch], None]] = None,
        dedup_outer: bool = False,
        expected_outer: Optional[int] = None,
    ) -> None:
        self._executor = executor
        self._streams: Dict[int, _Stream] = {
            task_id: _Stream(task_id) for task_id in task_ids
        }
        self._batch_size = batch_size
        self._on_batch = on_batch
        self._dedup_outer = dedup_outer
        self._expected_outer = expected_outer
        self._seen_outer: Set[int] = set()
        self._ready: Deque[JoinResult] = deque()

    # ------------------------------------------------------------------
    # stream plumbing
    # ------------------------------------------------------------------

    def _absorb(self, batch: TaskBatch) -> None:
        stream = self._streams[batch.task_id]
        stream.buffer.extend(batch.results)
        if batch.done:
            stream.done = True
        if self._on_batch is not None:
            self._on_batch(batch)

    def _fill(self, needy: List[_Stream]) -> None:
        """Request data for every needy stream, then block until each
        has either data or a done flag."""
        for stream in needy:
            self._executor.request(stream.task_id, self._batch_size)
        while any(stream.needs_data for stream in needy):
            self._absorb(self._executor.next_batch(self._batch_size))

    def _fill_all_live(self) -> bool:
        """Ensure every live stream is buffered; False when all
        streams are exhausted."""
        while True:
            needy = [
                s for s in self._streams.values() if s.needs_data
            ]
            if not needy:
                break
            self._fill(needy)
        return any(
            not s.exhausted for s in self._streams.values()
        )

    # ------------------------------------------------------------------
    # the watermark merge
    # ------------------------------------------------------------------

    def _collect_tie_group(self) -> List[JoinResult]:
        """Pop the full group of pairs at the global minimum distance.

        Precondition: every live stream has a buffered head.  A stream
        contributes its leading run of pairs at the minimum distance;
        the run is only complete once the stream's watermark (next
        buffered element) moves strictly past it or the stream ends.
        """
        d = min(
            s.buffer[0].distance
            for s in self._streams.values() if s.buffer
        )
        group: List[JoinResult] = []
        for stream in self._streams.values():
            while True:
                while stream.buffer and stream.buffer[0].distance == d:
                    group.append(stream.buffer.popleft())
                if stream.buffer or stream.done:
                    break
                self._fill([stream])
        group.sort(key=lambda r: (r.oid1, r.oid2))
        return group

    def _emit_group(self, group: List[JoinResult]) -> None:
        if not self._dedup_outer:
            self._ready.extend(group)
            return
        for result in group:
            if result.oid1 in self._seen_outer:
                continue
            self._seen_outer.add(result.oid1)
            self._ready.append(result)

    def _semi_join_complete(self) -> bool:
        return (
            self._dedup_outer
            and self._expected_outer is not None
            and len(self._seen_outer) >= self._expected_outer
        )

    # ------------------------------------------------------------------
    # iterator protocol
    # ------------------------------------------------------------------

    def __iter__(self) -> Iterator[JoinResult]:
        return self

    def __next__(self) -> JoinResult:
        while not self._ready:
            if self._semi_join_complete():
                raise StopIteration
            if not self._fill_all_live():
                raise StopIteration
            self._emit_group(self._collect_tie_group())
        return self._ready.popleft()
