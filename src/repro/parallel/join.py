"""The partitioned parallel distance join and semi-join operators.

:class:`ParallelDistanceJoin` provides the same incremental iterator
contract as :class:`~repro.core.distance_join.IncrementalDistanceJoin`
-- result pairs in non-decreasing distance, lazily, with ``stop after
K`` costing only incremental work -- but executes as a fleet of
independent per-partition-pair joins whose ordered streams are
recombined by an order-preserving watermark merge
(:mod:`repro.parallel.merge`).

Output order is the canonical total order ``(distance, oid1, oid2)``:
deterministic, independent of worker count, partitioning method, and
backend.  The sequential join emits equal-distance ties in traversal
order instead, so byte-identical comparison against it requires
canonicalizing its ties the same way (see ``docs/PARALLEL.md``).

Differences from the sequential operator, all checked at construction:

- ``descending`` (farthest-first) is not supported -- the watermark
  merge is a min-merge;
- the worker queue is always the in-memory pairing-heap queue
  (per-tile queues are small);
- with the ``process`` backend every task and knob must pickle; a
  non-picklable ``pair_filter`` silently falls back to the ``thread``
  backend (counted as ``parallel_backend_fallback``).
"""

from __future__ import annotations

import os
import pickle
from typing import Any, Callable, Dict, List, Optional

from repro.core.distance_join import JoinResult
from repro.core.spec import JoinSpec
from repro.errors import CursorError, JoinError
from repro.parallel.executor import (
    BACKENDS,
    DEFAULT_BATCH_SIZE,
    PROCESS,
    SERIAL,
    THREAD,
    StreamExecutor,
    TaskBatch,
)
from repro.parallel.merge import OrderedStreamMerge
from repro.parallel.partition import GRID, make_partitioner
from repro.parallel.plan import TileJoinTask
from repro.rtree.base import DEFAULT_MAX_ENTRIES, RTreeBase
from repro.util.counters import CounterRegistry, CounterSnapshot
from repro.util.obs import ObsSnapshot, Observer
from repro.util.validation import require

def default_workers() -> int:
    """Worker count used when the caller does not choose one."""
    return max(1, min(8, os.cpu_count() or 1))


class ParallelDistanceJoin:
    """Partitioned parallel incremental distance join of two R-trees.

    Parameters
    ----------
    tree1, tree2:
        The spatial indexes of the two joined relations.
    workers:
        Worker slots (default: CPU count capped at 8).
    backend:
        ``"serial"``, ``"thread"``, ``"process"`` or ``"auto"``
        (serial for one worker, otherwise threads; choose
        ``"process"`` explicitly for CPU-bound scaling).
    partitions:
        Number of space tiles per relation (default: ``workers``).
        Tasks are the cross product of non-empty tiles, so expect up
        to ``partitions**2`` tasks.
    partition_method:
        ``"grid"`` (uniform tiles) or ``"str"`` (quantile-balanced
        sort-tile-recursive tiles).
    batch_size:
        Result pairs per worker round-trip.
    timeout:
        Seconds to wait for any single worker batch before raising
        :class:`~repro.errors.JoinError` (None = wait forever).
    spec / **knobs:
        A :class:`~repro.core.spec.JoinSpec` (or its fields as
        keywords -- ``metric``, ``min_distance``, ``max_distance``,
        ``max_pairs``, ``tie_break``, ``node_policy``, ``leaf_mode``,
        ``estimate``, ``aggressive``, ``pair_filter``,
        ``process_leaves_together``, ``filter_strategy``,
        ``dmax_strategy``), applied inside every worker task.
        Validated with ``JoinSpec.validate(parallel=True)``, which
        *explicitly* rejects the combinations the engine cannot honour
        (``descending``, a non-memory ``queue`` tier) instead of
        silently ignoring them.
    counters:
        As in the sequential join (aggregates all workers'
        registries).
    observer:
        Stage-timing sink (:class:`~repro.util.obs.Observer`).  Unlike
        the sequential join, the default is a private *enabled*
        observer: parallel instrumentation costs two clock reads per
        worker batch, not per pair, so :meth:`stage_breakdown` works
        out of the box.
    """

    _semi_join = False

    def __init__(
        self,
        tree1: RTreeBase,
        tree2: RTreeBase,
        spec: Optional[JoinSpec] = None,
        *,
        workers: Optional[int] = None,
        backend: str = "auto",
        partitions: Optional[int] = None,
        partition_method: str = GRID,
        batch_size: int = DEFAULT_BATCH_SIZE,
        timeout: Optional[float] = None,
        counters: Optional[CounterRegistry] = None,
        observer: Optional[Observer] = None,
        **knobs: Any,
    ) -> None:
        if tree1.dim != tree2.dim:
            raise JoinError(
                f"cannot join trees of dimension {tree1.dim} and "
                f"{tree2.dim}"
            )
        spec = JoinSpec.coalesce(spec, knobs)
        spec.validate(parallel=True)
        if workers is None:
            workers = default_workers()
        require(workers >= 1, "workers must be at least 1")
        require(batch_size >= 1, "batch_size must be at least 1")
        require(backend in BACKENDS + ("auto",),
                f'backend must be one of {BACKENDS + ("auto",)}')

        self.spec = spec
        self.tree1 = tree1
        self.tree2 = tree2
        self.workers = workers
        self.max_pairs = spec.max_pairs
        self.batch_size = batch_size
        self.timeout = timeout
        self.partitions = partitions if partitions is not None else workers
        self.partition_method = partition_method
        self.counters = counters if counters is not None else tree1.counters
        self.obs = observer if observer is not None else Observer(
            max_events=0
        )
        self.backend = self._resolve_backend(backend, spec.pair_filter)

        # Semi-join worker streams must stay uncapped: duplicate outer
        # objects are discarded only after the merge.
        worker_spec = (
            spec.evolve(max_pairs=None) if self._semi_join else spec
        )
        with self.obs.span("parallel.partition"):
            self.tasks: List[TileJoinTask] = self._plan_tasks(worker_spec)
        self.counters.add("parallel_tasks", len(self.tasks))
        self.counters.observe("parallel_partitions", self.partitions)

        self._task_snapshots: Dict[int, CounterSnapshot] = {}
        self._task_obs: Dict[int, ObsSnapshot] = {}
        self._task_workers: Dict[int, str] = {}
        self._executor: Optional[StreamExecutor] = None
        self._merge: Optional[OrderedStreamMerge] = None
        self._produced = 0
        self._closed = False
        #: Worker result batches folded in so far.  Batch arrivals are
        #: the operator's natural preemption points: the scheduler's
        #: quantum loop reads this to yield between tile batches
        #: instead of mid-batch.
        self.batches_received = 0

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------

    def _resolve_backend(
        self, backend: str, pair_filter: Optional[Callable]
    ) -> str:
        if backend == "auto":
            backend = SERIAL if self.workers == 1 else THREAD
        if backend == PROCESS and pair_filter is not None:
            try:
                pickle.dumps(pair_filter)
            except Exception:
                self.counters.add("parallel_backend_fallback")
                return THREAD
        return backend

    def _plan_tasks(self, spec: JoinSpec) -> List[TileJoinTask]:
        if len(self.tree1) == 0 or len(self.tree2) == 0:
            return []
        partitioner = make_partitioner(
            self.partition_method, self.tree1, self.tree2,
            self.partitions,
        )
        groups1 = partitioner.assign(self.tree1.items())
        groups2 = partitioner.assign(self.tree2.items())
        max_entries = max(
            getattr(self.tree1, "max_entries", DEFAULT_MAX_ENTRIES),
            getattr(self.tree2, "max_entries", DEFAULT_MAX_ENTRIES),
        )
        tasks: List[TileJoinTask] = []
        for index1 in sorted(groups1):
            for index2 in sorted(groups2):
                tasks.append(TileJoinTask(
                    task_id=len(tasks),
                    tile1=partitioner.tiles[index1],
                    tile2=partitioner.tiles[index2],
                    objects1=groups1[index1],
                    objects2=groups2[index2],
                    spec=spec,
                    semi_join=self._semi_join,
                    max_entries=max_entries,
                ))
        return tasks

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def _on_batch(self, batch: TaskBatch) -> None:
        previous = self._task_snapshots.get(batch.task_id)
        delta = (
            batch.counters.delta_from(previous)
            if previous is not None else batch.counters
        )
        self.counters.merge(delta)
        self.counters.add("parallel_batches")
        self.batches_received += 1
        self._task_snapshots[batch.task_id] = batch.counters
        self._task_workers[batch.task_id] = batch.worker
        if batch.spans is not None:
            # Worker stage timings are cumulative per task, like the
            # counter snapshot above: merge only the increment.
            prev_obs = self._task_obs.get(batch.task_id)
            obs_delta = (
                batch.spans.delta_from(prev_obs)
                if prev_obs is not None else batch.spans
            )
            if self.obs.enabled:
                self.obs.merge(obs_delta)
            self._task_obs[batch.task_id] = batch.spans

    def _start(self) -> None:
        self._executor = StreamExecutor(
            self.tasks,
            backend=self.backend,
            workers=self.workers,
            timeout=self.timeout,
        )
        self._merge = self._make_merge()

    def _make_merge(self) -> OrderedStreamMerge:
        return OrderedStreamMerge(
            self._executor,
            [task.task_id for task in self.tasks],
            self.batch_size,
            on_batch=self._on_batch,
        )

    def __iter__(self) -> "ParallelDistanceJoin":
        return self

    def __next__(self) -> JoinResult:
        if self._closed:
            raise StopIteration
        if self.max_pairs is not None and self._produced >= self.max_pairs:
            self.close()
            raise StopIteration
        if not self.tasks:
            raise StopIteration
        if self._merge is None:
            self._start()
        try:
            if self.obs.enabled:
                with self.obs.span("parallel.merge"):
                    result = next(self._merge)
            else:
                result = next(self._merge)
        except StopIteration:
            self.close()
            raise
        self._produced += 1
        self.counters.add("parallel_pairs_reported")
        return result

    # ------------------------------------------------------------------
    # lifecycle / introspection
    # ------------------------------------------------------------------

    def save(self) -> dict:
        """Not supported: mid-flight worker state cannot be serialized.

        A parallel join's execution state lives in its worker pool
        (in-flight tile batches, per-worker queues), so it cannot be
        turned into a compact on-disk cursor.  It is still a Python
        iterator, so the scheduler suspends it *in memory* between
        ``next()`` calls -- ideally at :attr:`batches_received`
        boundaries -- but such a session cannot be evicted to disk.
        """
        raise CursorError(
            f"{type(self).__name__} does not support save(): parallel "
            "joins suspend in memory only (between next() calls), not "
            "to a serialized cursor"
        )

    def close(self) -> None:
        """Cancel outstanding worker batches and release the pool.

        Safe to call repeatedly; iteration afterwards reports
        exhaustion.  Also invoked automatically when the iterator is
        exhausted, when ``max_pairs`` is reached, and on garbage
        collection.
        """
        if self._closed:
            return
        self._closed = True
        if self._executor is not None:
            self._executor.close()

    def __enter__(self) -> "ParallelDistanceJoin":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass

    def progress_signals(self) -> Dict[str, Any]:
        """Raw progress facts, mirroring
        :meth:`~repro.core.distance_join.IncrementalDistanceJoin
        .progress_signals`.

        A parallel join has no single queue head to probe (each worker
        owns a tile-local queue), so only the certified pair count and
        completion flag are reported; batch arrivals ride along as
        detail for the flight recorder.
        """
        return {
            "operator": type(self).__name__,
            "produced": self._produced,
            "max_pairs": self.max_pairs,
            "head_distance": None,
            "min_distance": self.spec.min_distance,
            "max_distance": self.spec.max_distance,
            "descending": self.spec.descending,
            "queue_len": 0,
            "done": self._closed or not self.tasks,
            "batches_received": self.batches_received,
            "tasks": len(self.tasks),
        }

    def task_counter_snapshots(self) -> Dict[int, CounterSnapshot]:
        """Latest per-task worker counter snapshots (task id keyed)."""
        return dict(self._task_snapshots)

    def task_span_snapshots(self) -> Dict[int, ObsSnapshot]:
        """Latest per-task worker stage timings (task id keyed)."""
        return dict(self._task_obs)

    def stage_breakdown(self) -> Dict[str, float]:
        """Wall seconds per pipeline stage, aggregated so far.

        - ``partition``: parent-side task planning;
        - ``worker_build``: workers constructing per-tile joins;
        - ``worker_join``: workers pulling result batches (summed over
          workers, so with real parallelism it can exceed wall time);
        - ``merge``: parent-side recombination, *including* time spent
          waiting on worker batches.
        """
        return {
            "partition": self.obs.span_seconds("parallel.partition"),
            "worker_build": self.obs.span_seconds("worker.build"),
            "worker_join": self.obs.span_seconds("worker.join"),
            "merge": self.obs.span_seconds("parallel.merge"),
        }

    def trace_events(self) -> List[Dict[str, Any]]:
        """The execution so far as Chrome trace events.

        One driver track (the parent's partition/merge spans, plus
        per-occurrence events when the observer records them) and one
        track per worker built from the :class:`ObsSnapshot`\\ s the
        workers shipped with their batches; load with Perfetto or
        ``chrome://tracing``.
        """
        from repro.util import tracing

        events = tracing.observer_trace(
            self.obs, process_name="repro parallel join",
        )
        events.extend(tracing.worker_track_events(
            self._task_obs, self._task_workers,
        ))
        return tracing.sort_events(events)

    def write_trace(self, path: str) -> str:
        """Write :meth:`trace_events` to ``path`` as trace JSON."""
        from repro.util import tracing

        return tracing.write_chrome_trace(
            path, self.trace_events(),
            metadata={
                "workers": self.workers,
                "backend": self.backend,
                "tasks": len(self.tasks),
            },
        )

    def worker_breakdown(self) -> Dict[str, CounterSnapshot]:
        """Aggregate the per-task snapshots by executing worker."""
        merged: Dict[str, CounterRegistry] = {}
        for task_id, snapshot in self._task_snapshots.items():
            worker = self._task_workers.get(task_id, "?")
            registry = merged.setdefault(worker, CounterRegistry())
            registry.merge(snapshot)
        return {
            worker: registry.full_snapshot()
            for worker, registry in merged.items()
        }

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(workers={self.workers}, "
            f"backend={self.backend}, tasks={len(self.tasks)}, "
            f"produced={self._produced})"
        )


class ParallelDistanceSemiJoin(ParallelDistanceJoin):
    """Partitioned parallel distance semi-join.

    Each tile-pair task runs a sequential distance semi-join, so a
    task reports the nearest inner-tile object for each of its outer
    objects; the watermark merge recombines the candidate streams in
    global distance order and a best-per-object filter keeps only the
    first (hence globally nearest) result for every outer object id --
    the same output set as the sequential semi-join.

    When equally-distant nearest neighbours exist in different inner
    tiles, the reported partner is the one with the smallest inner
    object id (the canonical choice); the sequential operator reports
    whichever its traversal finds first.  Distances always agree.

    Worker streams run uncapped (``max_pairs`` applies only to merged
    output) and the merge stops early once every outer object has been
    reported.
    """

    _semi_join = True

    def _make_merge(self) -> OrderedStreamMerge:
        return OrderedStreamMerge(
            self._executor,
            [task.task_id for task in self.tasks],
            self.batch_size,
            on_batch=self._on_batch,
            dedup_outer=True,
            expected_outer=len(self.tree1),
        )
