"""Worker execution backends for the parallel distance join.

The parent drives each :class:`TileJoinTask` as an *incremental
stream*: it asks for one batch of ``batch_size`` result pairs at a
time, and the worker keeps the underlying join's priority queue alive
between batches so each request costs only the incremental work (the
paper's fast-first property survives parallelisation).

Three backends share one protocol:

``serial``
    Runs tasks inline in the parent (no pool).  The degenerate
    one-worker configuration, also the easiest to debug.
``thread``
    A :class:`~concurrent.futures.ThreadPoolExecutor`.  Threads share
    the parent's memory, so tasks need not pickle; best for I/O-bound
    buffered trees and for small joins where process start-up would
    dominate.
``process``
    One single-worker :class:`~concurrent.futures.ProcessPoolExecutor`
    *lane* per worker slot, with tasks pinned to lanes round-robin.
    Pinning guarantees that the process holding a task's live join
    receives every follow-up batch request, so queue state is never
    rebuilt.  If a lane process dies and state is lost anyway, the
    parent transparently reopens the task and skips the results it
    already consumed.

Workers retain per-task state in a module-level cache keyed by a
parent-unique run token, report cumulative counters with every batch
(:class:`~repro.util.counters.CounterSnapshot`), and drop all state on
``close``.
"""

from __future__ import annotations

import itertools
import os
import threading
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.core.distance_join import JoinResult
from repro.errors import JoinError
from repro.parallel.plan import TileJoinTask
from repro.util.counters import CounterRegistry, CounterSnapshot
from repro.util.obs import ObsSnapshot, Observer
from repro.util.validation import require

#: Executor backend names ("auto" resolves before a pool is built).
SERIAL = "serial"
THREAD = "thread"
PROCESS = "process"
BACKENDS = (SERIAL, THREAD, PROCESS)

#: Default result pairs per worker round-trip.
DEFAULT_BATCH_SIZE = 64

_RUN_SEQ = itertools.count()


class TaskBatch(NamedTuple):
    """One worker round-trip: a chunk of ordered results plus status.

    ``counters`` and ``spans`` are *cumulative* for the task; the
    parent merges per-batch deltas (``delta_from``) so nothing double
    counts across round-trips.
    """

    task_id: int
    results: Tuple[JoinResult, ...]
    produced: int  # cumulative results produced by this task so far
    done: bool
    counters: CounterSnapshot
    worker: str  # pid/thread label, for per-worker breakdowns
    spans: Optional[ObsSnapshot] = None  # cumulative stage timings


class TaskStateLost(RuntimeError):
    """A worker was asked to advance a task it has no state for."""

    def __init__(self, task_id: int) -> None:
        super().__init__(f"no live state for task {task_id}")
        self.task_id = task_id


# ----------------------------------------------------------------------
# worker-side functions (module level so the process backend can pickle
# references to them; the thread/serial backends call them directly)
# ----------------------------------------------------------------------


class _WorkerTaskState:
    """A live join held inside a worker between batch requests."""

    __slots__ = ("task", "join", "table1", "table2", "counters",
                 "produced", "obs")

    def __init__(self, task: TileJoinTask) -> None:
        self.task = task
        self.counters = CounterRegistry()
        # Stage timings ship with every batch next to the counter
        # snapshot.  The cost is two perf_counter reads per batch, so
        # the worker always records; the parent decides what to keep.
        self.obs = Observer(max_events=0)
        with self.obs.span("worker.build"):
            self.join, self.table1, self.table2 = task.build_join(
                self.counters
            )
        self.produced = 0


_WORKER_TASKS: Dict[Tuple[str, int], _WorkerTaskState] = {}


def _worker_label() -> str:
    thread = threading.current_thread()
    if thread is threading.main_thread():
        return f"pid-{os.getpid()}"
    return f"pid-{os.getpid()}/{thread.name}"


def _pull_batch(
    state: _WorkerTaskState, batch_size: int
) -> TaskBatch:
    results: List[JoinResult] = []
    done = False
    with state.obs.span("worker.join"):
        while len(results) < batch_size:
            try:
                result = next(state.join)
            except StopIteration:
                done = True
                break
            results.append(
                state.task.translate(result, state.table1, state.table2)
            )
    state.produced += len(results)
    # Batch fill level rides in the snapshot's gauges, so per-worker
    # trace tracks can show how full round-trips ran.
    state.obs.gauge("worker.batch_pairs", float(len(results)))
    return TaskBatch(
        task_id=state.task.task_id,
        results=tuple(results),
        produced=state.produced,
        done=done,
        counters=state.counters.full_snapshot(),
        worker=_worker_label(),
        spans=state.obs.snapshot(),
    )


def _open_task(
    run_token: str, task: TileJoinTask, offset: int, batch_size: int
) -> TaskBatch:
    """Build (or rebuild) a task's join, skip ``offset`` results the
    parent already consumed, and pull the first batch."""
    state = _WorkerTaskState(task)
    for __ in range(offset):
        try:
            next(state.join)
        except StopIteration:
            break
    state.produced = offset
    _WORKER_TASKS[(run_token, task.task_id)] = state
    return _pull_batch(state, batch_size)


def _advance_task(
    run_token: str, task_id: int, batch_size: int
) -> TaskBatch:
    """Pull the next batch from a task opened earlier in this worker."""
    state = _WORKER_TASKS.get((run_token, task_id))
    if state is None:
        raise TaskStateLost(task_id)
    return _pull_batch(state, batch_size)


def _close_run(run_token: str) -> int:
    """Drop every task state of one run; returns how many were live."""
    keys = [key for key in _WORKER_TASKS if key[0] == run_token]
    for key in keys:
        del _WORKER_TASKS[key]
    return len(keys)


# ----------------------------------------------------------------------
# parent-side pools
# ----------------------------------------------------------------------


def _completed_future(value: TaskBatch) -> "Future[TaskBatch]":
    future: "Future[TaskBatch]" = Future()
    future.set_result(value)
    return future


class SerialPool:
    """Inline execution: every request completes synchronously."""

    backend = SERIAL

    def __init__(self, run_token: str) -> None:
        self._run_token = run_token

    def submit_open(
        self, task: TileJoinTask, offset: int, batch_size: int
    ) -> "Future[TaskBatch]":
        return _completed_future(
            _open_task(self._run_token, task, offset, batch_size)
        )

    def submit_advance(
        self, task_id: int, batch_size: int
    ) -> "Future[TaskBatch]":
        return _completed_future(
            _advance_task(self._run_token, task_id, batch_size)
        )

    def shutdown(self, cancel: bool = True) -> None:
        _close_run(self._run_token)


class ThreadPool:
    """A shared thread pool; task state lives in this process."""

    backend = THREAD

    def __init__(self, run_token: str, workers: int) -> None:
        self._run_token = run_token
        self._pool = ThreadPoolExecutor(
            max_workers=workers,
            thread_name_prefix="repro-join",
        )

    def submit_open(
        self, task: TileJoinTask, offset: int, batch_size: int
    ) -> "Future[TaskBatch]":
        return self._pool.submit(
            _open_task, self._run_token, task, offset, batch_size
        )

    def submit_advance(
        self, task_id: int, batch_size: int
    ) -> "Future[TaskBatch]":
        return self._pool.submit(
            _advance_task, self._run_token, task_id, batch_size
        )

    def shutdown(self, cancel: bool = True) -> None:
        self._pool.shutdown(wait=True, cancel_futures=cancel)
        _close_run(self._run_token)


class ProcessLanes:
    """One single-process lane per worker slot, tasks pinned by id.

    Pinning keeps each task's live priority queue in the process that
    built it.  The parent still survives a lost lane: a
    :class:`TaskStateLost` escape triggers a re-open with an offset.
    """

    backend = PROCESS

    def __init__(self, run_token: str, workers: int) -> None:
        self._run_token = run_token
        self._lanes = [
            ProcessPoolExecutor(max_workers=1) for __ in range(workers)
        ]
        self._lane_of: Dict[int, int] = {}
        self._next_lane = 0

    def _lane(self, task_id: int) -> ProcessPoolExecutor:
        lane = self._lane_of.get(task_id)
        if lane is None:
            lane = self._next_lane
            self._lane_of[task_id] = lane
            self._next_lane = (self._next_lane + 1) % len(self._lanes)
        return self._lanes[lane]

    def submit_open(
        self, task: TileJoinTask, offset: int, batch_size: int
    ) -> "Future[TaskBatch]":
        return self._lane(task.task_id).submit(
            _open_task, self._run_token, task, offset, batch_size
        )

    def submit_advance(
        self, task_id: int, batch_size: int
    ) -> "Future[TaskBatch]":
        return self._lane(task_id).submit(
            _advance_task, self._run_token, task_id, batch_size
        )

    def shutdown(self, cancel: bool = True) -> None:
        for lane in self._lanes:
            lane.shutdown(wait=False, cancel_futures=cancel)


def make_pool(backend: str, workers: int):
    """Build a pool; ``workers`` is ignored by the serial backend."""
    require(backend in BACKENDS,
            f"backend must be one of {BACKENDS}")
    require(workers >= 1, "workers must be at least 1")
    run_token = f"{os.getpid()}-{next(_RUN_SEQ)}"
    if backend == SERIAL:
        return SerialPool(run_token)
    if backend == THREAD:
        return ThreadPool(run_token, workers)
    return ProcessLanes(run_token, workers)


class StreamExecutor:
    """Drives every task of one parallel join as a buffered stream.

    The merge layer asks for a task's next batch with
    :meth:`request`; completed batches are collected with
    :meth:`next_batch`, which blocks up to ``timeout`` seconds.  At
    most one request per task is in flight -- worker task state is
    single-cursor, so overlapping requests for one task would race.
    """

    def __init__(
        self,
        tasks: List[TileJoinTask],
        backend: str,
        workers: int,
        timeout: Optional[float] = None,
    ) -> None:
        self._tasks = {task.task_id: task for task in tasks}
        self._pool = make_pool(backend, workers)
        self._timeout = timeout
        self._opened: Dict[int, bool] = {}
        self._produced: Dict[int, int] = {}
        self._pending: Dict["Future[TaskBatch]", int] = {}
        self._closed = False

    @property
    def backend(self) -> str:
        return self._pool.backend

    def has_pending(self) -> bool:
        return bool(self._pending)

    def pending_for(self, task_id: int) -> bool:
        return task_id in self._pending.values()

    def request(self, task_id: int, batch_size: int) -> None:
        """Ask for the next batch of ``task_id`` (no-op if in flight)."""
        if self._closed:
            raise JoinError("parallel join executor is closed")
        if self.pending_for(task_id):
            return
        if self._opened.get(task_id):
            future = self._pool.submit_advance(task_id, batch_size)
        else:
            future = self._pool.submit_open(
                self._tasks[task_id],
                self._produced.get(task_id, 0),
                batch_size,
            )
            self._opened[task_id] = True
        self._pending[future] = task_id

    def next_batch(self, batch_size: int) -> TaskBatch:
        """Wait for any in-flight request to complete and return it.

        Transparently re-opens a task whose worker lost its state
        (process backend after a lane restart), skipping the results
        the parent already consumed.
        """
        while True:
            if not self._pending:
                raise JoinError(
                    "next_batch called with no request in flight"
                )
            done, __ = wait(
                self._pending, timeout=self._timeout,
                return_when=FIRST_COMPLETED,
            )
            if not done:
                self.close()
                raise JoinError(
                    f"parallel join timed out after "
                    f"{self._timeout}s waiting for a worker batch"
                )
            future = done.pop()
            task_id = self._pending.pop(future)
            try:
                batch = future.result()
            except TaskStateLost:
                # Lane restarted: rebuild the join where we left off.
                self._opened[task_id] = False
                self.request(task_id, batch_size)
                continue
            except JoinError:
                self.close()
                raise
            except Exception as exc:  # worker crash: surface cleanly
                self.close()
                raise JoinError(
                    f"parallel join worker failed on task "
                    f"{task_id}: {exc!r}"
                ) from exc
            self._produced[task_id] = batch.produced
            return batch

    def close(self) -> None:
        """Cancel outstanding work and release the pool."""
        if self._closed:
            return
        self._closed = True
        self._pending.clear()
        self._pool.shutdown(cancel=True)
