"""Space partitioning for the parallel distance join.

The parallel engine tiles the joint data space and assigns every
object of both relations to exactly one tile.  A worker task then
joins one tile of the first relation against one tile of the second,
so the union of all tile-pair tasks covers the cross product exactly
once -- no result pair can be duplicated or lost.

*Duplicate avoidance* follows the reference-point method used by
partition-based parallel spatial joins (Tsitsigkos et al., *Parallel
In-Memory Evaluation of Spatial Joins*): an object whose extent spans
several tiles is assigned to the single tile containing its reference
point (the center of its bounding rectangle, clamped into the tiled
bounds).  Because assignment is a function of the object alone, the
tiling is a true partition of each relation and every object pair
belongs to exactly one tile-pair task by construction.

Two tilings are provided:

- :class:`GridPartitioner` -- a uniform grid over the joint bounding
  box (cheap, oblivious to skew);
- :class:`STRPartitioner` -- slab boundaries chosen from the data's
  reference-point quantiles, the same sort-tile-recursive pass the STR
  bulk loader uses for leaf packing (balanced tile populations under
  skew).
"""

from __future__ import annotations

import math
from bisect import bisect_right
from typing import Any, Dict, Iterable, List, NamedTuple, Sequence, Tuple

from repro.geometry.rectangle import Rect
from repro.rtree.base import RTreeBase
from repro.util.validation import require

#: Partitioning method names.
GRID = "grid"
STR = "str"
PARTITION_METHODS = (GRID, STR)


class Tile(NamedTuple):
    """One cell of a space partition."""

    index: int
    rect: Rect


class TaskObject(NamedTuple):
    """One indexed object as shipped to a worker: original object id,
    bounding rectangle, and payload (None when only rectangles are
    indexed)."""

    oid: int
    rect: Rect
    obj: Any


def reference_point(rect: Rect) -> Tuple[float, ...]:
    """The reference point of an object: its MBR's center."""
    return tuple((lo + hi) / 2.0 for lo, hi in zip(rect.lo, rect.hi))


class Partitioner:
    """Base class: a list of tiles plus a rect -> tile assignment."""

    tiles: List[Tile]

    def tile_of(self, rect: Rect) -> int:
        """Index of the tile owning ``rect`` (by its reference point)."""
        raise NotImplementedError

    def assign(
        self, entries: Iterable[Any]
    ) -> Dict[int, List[TaskObject]]:
        """Group a tree's leaf entries by owning tile.

        ``entries`` iterates objects with ``rect``, ``oid`` and ``obj``
        attributes (the R-tree ``LeafEntry`` protocol).  Returns only
        non-empty groups.
        """
        groups: Dict[int, List[TaskObject]] = {}
        for entry in entries:
            tile = self.tile_of(entry.rect)
            groups.setdefault(tile, []).append(
                TaskObject(entry.oid, entry.rect, entry.obj)
            )
        return groups


class GridPartitioner(Partitioner):
    """A uniform grid of roughly ``partitions`` tiles over ``bounds``.

    The per-axis cell count is ``ceil(partitions ** (1/dim))``, so the
    actual tile count can slightly exceed ``partitions``; empty tiles
    simply produce no tasks.
    """

    def __init__(self, bounds: Rect, partitions: int) -> None:
        require(partitions >= 1, "partitions must be at least 1")
        self.bounds = bounds
        dim = len(bounds.lo)
        per_axis = max(1, int(math.ceil(partitions ** (1.0 / dim))))
        self.cells: List[int] = []
        self.steps: List[float] = []
        for lo, hi in zip(bounds.lo, bounds.hi):
            extent = hi - lo
            cells = per_axis if extent > 0.0 else 1
            self.cells.append(cells)
            self.steps.append(extent / cells if cells else 0.0)
        self.tiles = [
            Tile(index, self._tile_rect(index))
            for index in range(self._tile_count())
        ]

    def _tile_count(self) -> int:
        count = 1
        for cells in self.cells:
            count *= cells
        return count

    def _axis_cell(self, axis: int, coordinate: float) -> int:
        cells = self.cells[axis]
        step = self.steps[axis]
        if cells == 1 or step <= 0.0:
            return 0
        offset = coordinate - self.bounds.lo[axis]
        return min(cells - 1, max(0, int(offset / step)))

    def _tile_rect(self, index: int) -> Rect:
        lo: List[float] = []
        hi: List[float] = []
        remainder = index
        for axis in range(len(self.cells)):
            cell = remainder % self.cells[axis]
            remainder //= self.cells[axis]
            base = self.bounds.lo[axis]
            step = self.steps[axis]
            if self.cells[axis] == 1:
                lo.append(base)
                hi.append(self.bounds.hi[axis])
            else:
                lo.append(base + cell * step)
                hi.append(
                    self.bounds.hi[axis]
                    if cell == self.cells[axis] - 1
                    else base + (cell + 1) * step
                )
        return Rect(lo, hi)

    def tile_of(self, rect: Rect) -> int:
        point = reference_point(rect)
        index = 0
        stride = 1
        for axis, coordinate in enumerate(point):
            index += stride * self._axis_cell(axis, coordinate)
            stride *= self.cells[axis]
        return index


class STRPartitioner(Partitioner):
    """Sort-tile-recursive tiling balanced on reference-point counts.

    The first axis is cut into ``ceil(sqrt(partitions))`` slabs at
    sample quantiles; each slab is cut on the second axis the same way.
    One-dimensional data degenerates to quantile slabs on the only
    axis.  Ties at a boundary resolve to the lower tile (``bisect``),
    so assignment stays a function of the reference point alone.
    """

    def __init__(
        self,
        bounds: Rect,
        partitions: int,
        sample_rects: Sequence[Rect],
    ) -> None:
        require(partitions >= 1, "partitions must be at least 1")
        require(len(sample_rects) > 0,
                "STR partitioning needs a non-empty sample")
        self.bounds = bounds
        dim = len(bounds.lo)
        points = [reference_point(rect) for rect in sample_rects]
        if dim == 1:
            slabs = partitions
            cells_per_slab = 1
        else:
            slabs = max(1, int(math.ceil(math.sqrt(partitions))))
            cells_per_slab = max(1, int(math.ceil(partitions / slabs)))
        self.slab_cuts = self._quantile_cuts(
            sorted(p[0] for p in points), slabs
        )
        self.cell_cuts: List[List[float]] = []
        if dim > 1:
            xs_sorted = sorted(points, key=lambda p: p[0])
            slab_size = int(math.ceil(len(xs_sorted) / slabs))
            for start in range(0, slabs * slab_size, slab_size):
                slab_points = xs_sorted[start:start + slab_size]
                ys = sorted(p[1] for p in slab_points)
                self.cell_cuts.append(
                    self._quantile_cuts(ys, cells_per_slab)
                )
        self.cells_per_slab = cells_per_slab
        self.tiles = [
            Tile(index, self._tile_rect(index))
            for index in range((len(self.slab_cuts) + 1) * cells_per_slab)
        ]

    @staticmethod
    def _quantile_cuts(sorted_values: List[float], parts: int) -> List[float]:
        """Cut positions splitting ``sorted_values`` into ``parts``
        roughly equal groups (deduplicated, possibly fewer cuts)."""
        if parts <= 1 or not sorted_values:
            return []
        cuts: List[float] = []
        n = len(sorted_values)
        for k in range(1, parts):
            value = sorted_values[min(n - 1, (k * n) // parts)]
            if not cuts or value > cuts[-1]:
                cuts.append(value)
        return cuts

    def _slab_of(self, x: float) -> int:
        return bisect_right(self.slab_cuts, x)

    def _cell_of(self, slab: int, y: float) -> int:
        if not self.cell_cuts:
            return 0
        cuts = self.cell_cuts[min(slab, len(self.cell_cuts) - 1)]
        return min(self.cells_per_slab - 1, bisect_right(cuts, y))

    def _tile_rect(self, index: int) -> Rect:
        """The covering rectangle of one tile (diagnostic; edge tiles
        extend to the joint bounds)."""
        slab, cell = divmod(index, self.cells_per_slab)
        lo = list(self.bounds.lo)
        hi = list(self.bounds.hi)
        if self.slab_cuts:
            if slab > 0:
                lo[0] = self.slab_cuts[slab - 1]
            if slab < len(self.slab_cuts):
                hi[0] = self.slab_cuts[slab]
        if self.cell_cuts and len(lo) > 1:
            cuts = self.cell_cuts[min(slab, len(self.cell_cuts) - 1)]
            if cell > 0 and cuts:
                lo[1] = cuts[min(cell, len(cuts)) - 1]
            if cell < len(cuts):
                hi[1] = cuts[cell]
        hi = [max(a, b) for a, b in zip(lo, hi)]
        return Rect(lo, hi)

    def tile_of(self, rect: Rect) -> int:
        point = reference_point(rect)
        slab = self._slab_of(point[0])
        cell = self._cell_of(
            slab, point[1] if len(point) > 1 else 0.0
        )
        return slab * self.cells_per_slab + cell


def joint_bounds(tree1: RTreeBase, tree2: RTreeBase) -> Rect:
    """The union MBR of two trees (either may be empty, not both)."""
    bounds1 = tree1.bounds()
    bounds2 = tree2.bounds()
    if bounds1 is None and bounds2 is None:
        raise ValueError("cannot partition two empty trees")
    if bounds1 is None:
        return bounds2  # type: ignore[return-value]
    if bounds2 is None:
        return bounds1
    return bounds1.union(bounds2)


def make_partitioner(
    method: str,
    tree1: RTreeBase,
    tree2: RTreeBase,
    partitions: int,
) -> Partitioner:
    """Build the requested partitioner over two trees' joint bounds."""
    require(method in PARTITION_METHODS,
            f"partition method must be one of {PARTITION_METHODS}")
    bounds = joint_bounds(tree1, tree2)
    if method == GRID:
        return GridPartitioner(bounds, partitions)
    sample = [entry.rect for entry in tree1.items()]
    sample += [entry.rect for entry in tree2.items()]
    return STRPartitioner(bounds, partitions, sample)
