"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``generate``
    Write a synthetic point data set to CSV (``x,y`` per line):
    the TIGER-like *water*/*roads* sets or uniform/clustered points.
``index``
    Build an R-tree over a CSV point file and save it as a snapshot.
``info``
    Print a snapshot's parameters and structure summary.
``query``
    Run a Figure 1 SQL query over named relations (CSV files or
    snapshots) and print result rows -- lazily, so ``STOP AFTER``
    queries return immediately.  An ``EXPLAIN [ANALYZE]`` prefix in
    the SQL prints the plan (estimated, or annotated with actual
    counters and stage timings) instead of rows; ``--metrics FILE``
    exports the execution's counters and timings as JSON-lines plus a
    Prometheus-style text dump.
``explain``
    Print the plan and cost estimates for a query without running it
    (``--analyze`` or an ``EXPLAIN ANALYZE`` prefix runs it and
    reports actuals).
``serve``
    Serve queries over HTTP with the preemptable join scheduler
    (``POST /query`` then ``GET /next`` pages -- see docs/SERVICE.md).
``shard``
    Build and inspect persistent shard catalogs (``shard build``,
    ``shard list``, ``shard stats``); route a query through shards
    with ``query --shards N`` or a ``SHARDS N`` hint in the SQL
    (see docs/SHARDING.md).

``query --page K`` prints K rows and persists the suspended cursor to
``--cursor FILE``; ``query --resume FILE`` continues it later without
recomputing anything.

Examples
--------
::

    python -m repro generate water --count 2000 --out water.csv
    python -m repro generate roads --count 10000 --out roads.csv
    python -m repro index water.csv --out water.tree
    python -m repro query \
        "SELECT * FROM w, r, DISTANCE(w.geom, r.geom) AS d \
         ORDER BY d STOP AFTER 5" \
        --relation w=water.tree --relation r=roads.csv
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Iterable, List, Optional

from repro.datasets.synthetic import gaussian_clusters, uniform_points
from repro.datasets.tiger_like import roads_points, water_points
from repro.errors import ReproError
from repro.geometry.point import Point
from repro.query.executor import Database
from repro.rtree.bulk import bulk_load_str
from repro.rtree.guttman import GuttmanRTree
from repro.storage.snapshot import load_tree, save_tree

GENERATORS = {
    "water": lambda count, seed: water_points(count),
    "roads": lambda count, seed: roads_points(count),
    "uniform": lambda count, seed: uniform_points(count, seed),
    "clusters": lambda count, seed: gaussian_clusters(count, seed),
}


def _write_csv(points: Iterable[Point], path: str) -> int:
    count = 0
    with open(path, "w") as handle:
        for point in points:
            handle.write(",".join(f"{c:.10g}" for c in point.coords))
            handle.write("\n")
            count += 1
    return count


def _read_csv(path: str) -> List[Point]:
    points = []
    with open(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            try:
                points.append(
                    Point(float(cell) for cell in line.split(","))
                )
            except (ValueError, ReproError) as exc:
                raise SystemExit(
                    f"{path}:{line_number}: bad point row: {exc}"
                )
    return points


def _load_relation(source: str):
    if source.endswith(".csv"):
        return bulk_load_str(_read_csv(source))
    return load_tree(source)


def _parse_relation_args(pairs: List[str]) -> List[tuple]:
    relations = []
    for pair in pairs:
        name, __, source = pair.partition("=")
        if not name or not source:
            raise SystemExit(
                f"--relation expects name=source, got {pair!r}"
            )
        relations.append((name, source))
    return relations


def _build_database(relation_args: List[str]) -> Database:
    db = Database()
    for name, source in _parse_relation_args(relation_args):
        db.create_relation(name, _load_relation(source))
    return db


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------


def cmd_generate(args: argparse.Namespace) -> int:
    """``repro generate``: write a synthetic data set to CSV."""
    generator = GENERATORS[args.kind]
    count = _write_csv(generator(args.count, args.seed), args.out)
    print(f"wrote {count} points to {args.out}")
    return 0


def cmd_index(args: argparse.Namespace) -> int:
    """``repro index``: build a tree snapshot from a CSV file."""
    points = _read_csv(args.source)
    if args.guttman:
        tree = GuttmanRTree(
            dim=points[0].dim if points else 2,
            max_entries=args.fanout,
        )
        for point in points:
            tree.insert(obj=point)
    else:
        tree = bulk_load_str(points, max_entries=args.fanout)
    save_tree(tree, args.out)
    print(
        f"indexed {len(tree)} points into {type(tree).__name__} "
        f"(height {tree.height}, fan-out {tree.max_entries}) "
        f"-> {args.out}"
    )
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    """``repro info``: describe a tree snapshot."""
    tree = load_tree(args.snapshot)
    bounds = tree.bounds()
    print(f"class:       {type(tree).__name__}")
    print(f"objects:     {len(tree)}")
    print(f"dimensions:  {tree.dim}")
    print(f"height:      {tree.height}")
    print(f"fan-out:     {tree.max_entries} "
          f"(min fill {tree.min_entries})")
    print(f"pages:       {tree.store.page_count}")
    if bounds is not None:
        print(f"bounds:      {bounds!r}")
    if len(tree):
        from repro.rtree.stats import tree_quality
        print(f"quality:     {tree_quality(tree)}")
    return 0


def _start_profiler(path: Optional[str]):
    """An enabled :class:`cProfile.Profile` when ``path`` is set."""
    if not path:
        return None
    import cProfile

    profiler = cProfile.Profile()
    profiler.enable()
    return profiler


def _stop_profiler(profiler, path: Optional[str]) -> None:
    """Dump collected pstats to ``path`` (read with ``pstats`` or
    ``snakeviz``); no-op when profiling was not requested."""
    if profiler is None or not path:
        return
    profiler.disable()
    profiler.dump_stats(path)
    print(f"-- profile -> {path} (pstats)", file=sys.stderr)


def _print_row(row) -> None:
    coords1 = ",".join(f"{c:g}" for c in row.geom1.coords) \
        if isinstance(row.geom1, Point) else ""
    coords2 = ",".join(f"{c:g}" for c in row.geom2.coords) \
        if isinstance(row.geom2, Point) else ""
    print(
        f"{row.d:.6f}\t{row.oid1}\t{coords1}\t"
        f"{row.oid2}\t{coords2}"
    )


def _print_progress(estimator, plan, final: bool = False) -> None:
    """One ``-- progress`` line on stderr from the plan's signals.

    The certified bound ratchets inside ``estimator``, so successive
    lines never move backwards even if the probe does.
    """
    signals = plan.progress_signals() if plan is not None else None
    if signals is None:
        return
    if final:
        signals["done"] = True
    report = estimator.report(signals)
    print(
        f"-- progress: phase={report.phase} "
        f"certified>={report.lower_bound:.3f} "
        f"estimate={report.estimate:.3f}",
        file=sys.stderr,
    )


def _cmd_query_paged(args: argparse.Namespace) -> int:
    """``repro query --page K``: fetch one page, persist the cursor.

    A fresh run needs the SQL; ``--resume FILE`` continues from a
    cursor file instead (the same ``--relation`` bindings must be
    supplied -- the cursor stores execution state, not the data).
    """
    import os

    from repro.service import cursor as service_cursor
    from repro.service.session import QuerySource

    db = _build_database(args.relation)
    if args.resume:
        with open(args.resume, "rb") as handle:
            state = service_cursor.loads(handle.read())
        if args.sql and args.sql != state["sql"]:
            raise SystemExit(
                "error: the cursor was saved for a different query; "
                "omit the SQL argument when resuming"
            )
        source = QuerySource(db, state["sql"], strategy=state["strategy"])
        source.load(state)
        rows = source.open()
    else:
        if not args.sql:
            raise SystemExit("error: a SQL query is required "
                             "(or --resume CURSOR_FILE)")
        source = QuerySource(db, args.sql, strategy=args.strategy)
        rows = source.open()

    page = args.page if args.page is not None else 16
    printed = 0
    exhausted = False
    while printed < page:
        try:
            row = next(rows)
        except StopIteration:
            exhausted = True
            break
        _print_row(row)
        printed += 1

    if args.progress:
        from repro.util.telemetry import ProgressEstimator

        _print_progress(
            ProgressEstimator(), source.plan, final=exhausted
        )
    cursor_path = args.cursor or args.resume
    print(f"-- {printed} row(s)", file=sys.stderr)
    if exhausted:
        print("-- done (stream exhausted)", file=sys.stderr)
        if cursor_path and os.path.exists(cursor_path):
            os.remove(cursor_path)
        return 0
    if not cursor_path:
        print(
            "-- warning: no --cursor file given; progress discarded",
            file=sys.stderr,
        )
        return 0
    blob = service_cursor.dumps(source.save())
    with open(cursor_path, "wb") as handle:
        handle.write(blob)
    print(
        f"-- cursor -> {cursor_path} "
        f"(resume with: repro query --resume {cursor_path} ...)",
        file=sys.stderr,
    )
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    """``repro query``: run a SQL query, streaming rows to stdout."""
    from repro.query.parser import parse
    from repro.util.obs import Observer, write_metrics

    if args.page is not None or args.resume:
        return _cmd_query_paged(args)
    if not args.sql:
        raise SystemExit("error: a SQL query is required")
    db = _build_database(args.relation)
    query = parse(args.sql)
    if args.workers is not None:
        # CLI flag and SQL hint are equivalent; the flag wins.
        query.parallel = args.workers
    if args.shards is not None:
        query.shards = args.shards

    if query.explain:
        if not query.analyze:
            print(db.explain(query, strategy=args.strategy).pretty())
            return 0
        profiler = _start_profiler(args.profile)
        try:
            analyzed = db.explain_analyze(query, strategy=args.strategy)
        finally:
            _stop_profiler(profiler, args.profile)
        print(analyzed.pretty())
        if args.metrics:
            write_metrics(args.metrics, records=analyzed.metrics(
                labels={"command": "query", "mode": "explain_analyze"}
            ))
            print(f"-- metrics -> {args.metrics} (+ .prom)",
                  file=sys.stderr)
        return 0

    observe = bool(args.metrics or args.trace)
    obs = Observer(trace_spans=bool(args.trace)) if observe else None
    before = db.counters.full_snapshot() if args.metrics else None
    join_kwargs = {"observer": obs} if obs is not None else {}
    if args.kernel != "auto":
        join_kwargs["kernel"] = args.kernel
    plan = None
    estimator = None
    if args.progress:
        from repro.util.telemetry import ProgressEstimator

        plan = db.physical_plan(
            query, strategy=args.strategy, **join_kwargs
        )
        estimator = ProgressEstimator()
    profiler = _start_profiler(args.profile)
    try:
        if plan is not None:
            rows = plan.rows()
        else:
            rows = db.execute_query(
                query, strategy=args.strategy, **join_kwargs
            )
        printed = 0
        last_report = time.monotonic() if args.progress else 0.0
        for row in rows:
            _print_row(row)
            printed += 1
            if args.limit is not None and printed >= args.limit:
                break
            if (
                estimator is not None
                and time.monotonic() - last_report >= 0.5
            ):
                _print_progress(estimator, plan)
                last_report = time.monotonic()
    finally:
        _stop_profiler(profiler, args.profile)
    if estimator is not None:
        _print_progress(estimator, plan, final=True)
    print(f"-- {printed} row(s)", file=sys.stderr)
    if args.metrics:
        delta = db.counters.full_snapshot().delta_from(before)
        write_metrics(args.metrics, counters=delta, obs=obs,
                      labels={"command": "query"})
        print(f"-- metrics -> {args.metrics} (+ .prom)",
              file=sys.stderr)
    if args.trace and obs is not None:
        from repro.util.tracing import observer_trace, write_chrome_trace

        write_chrome_trace(
            args.trace,
            observer_trace(obs, process_name="repro query"),
            metadata={"sql": args.sql},
        )
        print(f"-- trace -> {args.trace} (Perfetto/chrome://tracing)",
              file=sys.stderr)
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    """``repro explain``: print a query plan without executing."""
    from repro.query.parser import parse

    db = _build_database(args.relation)
    query = parse(args.sql)
    if query.analyze or getattr(args, "analyze", False):
        print(db.explain_analyze(query, strategy=args.strategy).pretty())
    else:
        print(db.explain(query, strategy=args.strategy).pretty())
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve``: run the preemptable join service over HTTP."""
    from repro.service.server import run

    db = _build_database(args.relation)
    names = ", ".join(db.relations()) or "(none)"
    print(
        f"serving relations [{names}] on "
        f"http://{args.host}:{args.port} "
        f"(quantum {args.quantum_pairs} pairs / "
        f"{args.quantum_seconds}s; Ctrl-C to stop)",
        file=sys.stderr,
    )
    run(
        db,
        host=args.host,
        port=args.port,
        # Share the database's registry so the join's own counters
        # (dist_calcs, node_io, shard_pairs_*) surface on /metrics
        # next to the scheduler's.
        counters=db.counters,
        quantum_pairs=args.quantum_pairs,
        quantum_seconds=args.quantum_seconds,
        max_sessions=args.max_sessions,
        spool_dir=args.spool_dir,
        idle_evict_seconds=args.idle_evict_seconds,
        telemetry=not args.no_telemetry,
        latency_budget_seconds=args.latency_budget,
        dump_dir=args.dump_dir,
        log_json=args.log_json,
    )
    return 0


def cmd_shard_build(args: argparse.Namespace) -> int:
    """``repro shard build``: partition a relation into a persisted
    shard catalog (one R-tree snapshot per shard + a manifest)."""
    from repro.shard.catalog import ShardCatalog

    tree = _load_relation(args.source)
    catalog = ShardCatalog.build(
        tree, shards=args.shards, method=args.method
    )
    path = catalog.save(args.out)
    print(f"catalog:     {args.out}")
    print(f"manifest:    {path}")
    print(f"shards:      {len(catalog)} (requested {args.shards}, "
          f"method {catalog.method})")
    print(f"objects:     {sum(i.count for i in catalog.infos)}")
    print(f"fingerprint: {catalog.fingerprint}")
    return 0


def cmd_shard_list(args: argparse.Namespace) -> int:
    """``repro shard list``: summarize a persisted catalog."""
    from repro.shard.catalog import ShardCatalog

    catalog = ShardCatalog.open(args.catalog)
    print(f"catalog:     {len(catalog)} shards "
          f"({catalog.method}, dim {catalog.dim})")
    print(f"fingerprint: {catalog.fingerprint}")
    for info in catalog.infos:
        print(
            f"  shard {info.shard_id:4d}  tile {info.tile_index:4d}  "
            f"{info.count:7,d} objects  "
            f"mbr {info.mbr!r}  {info.fingerprint[:12]}"
        )
    return 0


def cmd_shard_stats(args: argparse.Namespace) -> int:
    """``repro shard stats``: per-shard cost-model summaries."""
    from repro.shard.catalog import ShardCatalog

    catalog = ShardCatalog.open(args.catalog)
    shard_ids = (
        [args.shard] if args.shard is not None else catalog.shard_ids
    )
    for shard_id in shard_ids:
        info = catalog.info(shard_id)
        stats = catalog.stats(shard_id)
        nodes = sum(level.nodes for level in stats.levels)
        leaf = stats.levels[0]
        fill = stats.size / max(1, leaf.nodes)
        print(
            f"shard {shard_id}: {info.count:,} objects, "
            f"height {stats.height}, {nodes} nodes, "
            f"avg leaf fill {fill:.2f}"
        )
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Run a named benchmark script's table printer."""
    import importlib
    import os

    os.environ.setdefault("REPRO_BENCH_SCALE", str(args.scale))
    module_name = f"benchmarks.bench_{args.name}"
    try:
        module = importlib.import_module(module_name)
    except ImportError:
        print(
            f"error: no benchmark named {args.name!r} "
            f"(expected a benchmarks/bench_{args.name}.py next to the "
            f"source checkout)",
            file=sys.stderr,
        )
        return 1
    script_argv = ["--scale", str(args.scale)]
    if args.repeat is not None:
        script_argv += ["--repeat", str(args.repeat)]
    if args.metrics:
        script_argv += ["--metrics", args.metrics]
    if args.json:
        script_argv += ["--json"]
    profiler = _start_profiler(args.profile)
    try:
        module.main(script_argv)
    finally:
        _stop_profiler(profiler, args.profile)
    return 0


# ----------------------------------------------------------------------
# argument parsing
# ----------------------------------------------------------------------


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {text!r}"
        )
    return value


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree (exposed for testing/docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Incremental distance joins for spatial data "
            "(Hjaltason & Samet, SIGMOD 1998)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="write a synthetic point data set to CSV"
    )
    generate.add_argument("kind", choices=sorted(GENERATORS))
    generate.add_argument("--count", type=int, default=1000)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--out", required=True)
    generate.set_defaults(func=cmd_generate)

    index = commands.add_parser(
        "index", help="build an R-tree snapshot from a CSV point file"
    )
    index.add_argument("source")
    index.add_argument("--out", required=True)
    index.add_argument("--fanout", type=int, default=50)
    index.add_argument(
        "--guttman", action="store_true",
        help="build a classic R-tree by repeated insertion",
    )
    index.set_defaults(func=cmd_index)

    info = commands.add_parser(
        "info", help="describe a tree snapshot"
    )
    info.add_argument("snapshot")
    info.set_defaults(func=cmd_info)

    query = commands.add_parser(
        "query", help="run a distance (semi-)join SQL query"
    )
    query.add_argument(
        "sql", nargs="?", default=None,
        help="the query text (optional with --resume)",
    )
    query.add_argument(
        "--relation", action="append", default=[],
        metavar="NAME=SOURCE",
        help="bind a relation name to a .csv file or tree snapshot "
             "(repeatable)",
    )
    query.add_argument(
        "--limit", type=int, default=None,
        help="stop printing after this many rows (the pipeline stops "
             "with it)",
    )
    query.add_argument(
        "--workers", type=_positive_int, default=None, metavar="N",
        help="execute with the partitioned parallel join engine using "
             "N workers (same as a PARALLEL N hint in the SQL)",
    )
    query.add_argument(
        "--shards", type=_positive_int, default=None, metavar="N",
        help="route the join through N-shard catalogs per relation "
             "(same as a SHARDS N hint in the SQL)",
    )
    query.add_argument(
        "--metrics", default=None, metavar="FILE",
        help="write the execution's counters and timings to FILE as "
             "JSON-lines, plus a Prometheus-style dump to FILE.prom",
    )
    query.add_argument(
        "--trace", default=None, metavar="FILE",
        help="export the execution's spans/gauges/events as Chrome "
             "trace-event JSON (open in Perfetto or chrome://tracing)",
    )
    query.add_argument(
        "--strategy", choices=("auto", "pipeline", "prefilter"),
        default="auto",
        help="predicate plan for WHERE attribute filters: push them "
             "into the join pipeline, prefilter into temporary "
             "indexes, or let the cost model decide (default)",
    )
    query.add_argument(
        "--kernel", choices=("auto", "scalar", "vector"),
        default="auto",
        help="batch-kernel selection for node expansion: vectorized "
             "bounds when numpy is importable (auto, the default), "
             "the pure-Python path (scalar), or require the numpy "
             "kernels (vector); results are identical either way",
    )
    query.add_argument(
        "--profile", default=None, metavar="FILE",
        help="run under cProfile and dump pstats to FILE",
    )
    query.add_argument(
        "--progress", action="store_true",
        help="report certified progress on stderr while the query "
             "runs (phase, certified lower bound, estimate)",
    )
    query.add_argument(
        "--page", type=_positive_int, default=None, metavar="K",
        help="interactive paging: print K rows, persist the suspended "
             "cursor to --cursor, and exit",
    )
    query.add_argument(
        "--cursor", default=None, metavar="FILE",
        help="where --page writes the suspended cursor",
    )
    query.add_argument(
        "--resume", default=None, metavar="FILE",
        help="continue a paged query from a cursor file written by a "
             "previous --page run (same --relation bindings required)",
    )
    query.set_defaults(func=cmd_query)

    explain = commands.add_parser(
        "explain", help="show the plan and cost estimate for a query"
    )
    explain.add_argument("sql")
    explain.add_argument(
        "--relation", action="append", default=[],
        metavar="NAME=SOURCE",
    )
    explain.add_argument(
        "--analyze", action="store_true",
        help="execute the query and annotate the plan with actual "
             "counters and stage timings (EXPLAIN ANALYZE)",
    )
    explain.add_argument(
        "--strategy", choices=("auto", "pipeline", "prefilter"),
        default="auto",
        help="predicate plan to explain: pipeline pushdown, prefilter "
             "materialization, or the cost model's choice (default)",
    )
    explain.set_defaults(func=cmd_explain)

    shard = commands.add_parser(
        "shard",
        help="build and inspect persistent shard catalogs",
    )
    shard_commands = shard.add_subparsers(
        dest="shard_command", required=True
    )
    shard_build = shard_commands.add_parser(
        "build",
        help="partition a relation into a persisted shard catalog",
    )
    shard_build.add_argument(
        "source", help="a .csv point file or tree snapshot"
    )
    shard_build.add_argument("--out", required=True, metavar="DIR")
    shard_build.add_argument(
        "--shards", type=_positive_int, default=4, metavar="N",
        help="requested shard count (empty tiles are dropped)",
    )
    shard_build.add_argument(
        "--method", choices=("str", "grid"), default="str",
        help="partitioner: STR leaf-packing tiles (default) or a "
             "uniform grid",
    )
    shard_build.set_defaults(func=cmd_shard_build)
    shard_list = shard_commands.add_parser(
        "list", help="summarize a persisted shard catalog"
    )
    shard_list.add_argument("catalog", metavar="DIR")
    shard_list.set_defaults(func=cmd_shard_list)
    shard_stats = shard_commands.add_parser(
        "stats", help="per-shard cost-model summaries"
    )
    shard_stats.add_argument("catalog", metavar="DIR")
    shard_stats.add_argument(
        "--shard", type=int, default=None, metavar="ID",
        help="one shard id (default: all)",
    )
    shard_stats.set_defaults(func=cmd_shard_stats)

    serve = commands.add_parser(
        "serve",
        help="serve queries over HTTP with the preemptable join "
             "scheduler",
    )
    serve.add_argument(
        "--relation", action="append", default=[],
        metavar="NAME=SOURCE",
        help="bind a relation name to a .csv file or tree snapshot "
             "(repeatable)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument(
        "--quantum-pairs", type=_positive_int, default=64,
        help="max rows one scheduler quantum produces per session",
    )
    serve.add_argument(
        "--quantum-seconds", type=float, default=0.05,
        help="wall-clock budget of one quantum",
    )
    serve.add_argument(
        "--max-sessions", type=_positive_int, default=256,
        help="admission cap on concurrent sessions",
    )
    serve.add_argument(
        "--spool-dir", default=None, metavar="DIR",
        help="evict idle sessions' cursors to DIR (eviction is off "
             "without it)",
    )
    serve.add_argument(
        "--idle-evict-seconds", type=float, default=30.0,
        help="idle threshold before a session is spooled to disk",
    )
    serve.add_argument(
        "--log-json", action="store_true",
        help="log every request as one structured JSON line (method, "
             "path, status, duration, session, trace id) on stdout",
    )
    serve.add_argument(
        "--latency-budget", type=float, default=None,
        metavar="SECONDS",
        help="flag scheduler quanta that exceed this wall-clock "
             "budget (service_slow_quanta counter + flight-recorder "
             "dump when --dump-dir is set)",
    )
    serve.add_argument(
        "--dump-dir", default=None, metavar="DIR",
        help="where slow-quantum trace dumps are written "
             "(requires --latency-budget)",
    )
    serve.add_argument(
        "--no-telemetry", action="store_true",
        help="disable request-scoped tracing and progress estimation "
             "(the /debug and /progress endpoints report errors)",
    )
    serve.set_defaults(func=cmd_serve)

    bench = commands.add_parser(
        "bench",
        help="regenerate a paper table/figure (requires the source "
             "checkout with benchmarks/)",
    )
    bench.add_argument(
        "name",
        help="benchmark name, e.g. table1, fig6_traversal, "
             "fig9_semijoin, ablation_buffer",
    )
    bench.add_argument("--scale", type=float, default=0.05)
    bench.add_argument(
        "--repeat", type=_positive_int, default=None, metavar="N",
        help="min-of-N repetitions per measurement",
    )
    bench.add_argument(
        "--json", action="store_true",
        help="emit the script's rows as JSON instead of a table",
    )
    bench.add_argument(
        "--metrics", default=None, metavar="FILE",
        help="write each measured run's metrics to FILE (JSON-lines "
             "plus FILE.prom)",
    )
    bench.add_argument(
        "--profile", default=None, metavar="FILE",
        help="run under cProfile and dump pstats to FILE",
    )
    bench.set_defaults(func=cmd_bench)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
