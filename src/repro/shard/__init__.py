"""Sharded relations: persistent catalogs + a pruning shard router.

- :mod:`repro.shard.catalog` -- partition a relation into per-shard
  R-trees with manifests, fingerprints, MBRs, and cost-model stats;
  persist and lazily reload them through the buffer pool.
- :mod:`repro.shard.router` -- the :class:`ShardRouterJoin` /
  :class:`ShardRouterSemiJoin` operators: shard pairs ordered by
  MINDIST lower bound, lazily admitted by the watermark merge, pruned
  when the consumer stops first; fully suspendable.
- :mod:`repro.shard.cache` -- fingerprint-keyed plan and result
  caches.

See ``docs/SHARDING.md`` for the catalog format, the pruning rule,
and the cache keys.
"""

from repro.shard.cache import clear_caches, result_cache, route_cache
from repro.shard.catalog import (
    CATALOG_FORMAT,
    CATALOG_VERSION,
    DEFAULT_SHARDS,
    ShardCatalog,
    ShardInfo,
    catalog_for,
)
from repro.shard.router import (
    InlineShardExecutor,
    ShardPair,
    ShardRouterJoin,
    ShardRouterSemiJoin,
    plan_shard_pairs,
)

__all__ = [
    "CATALOG_FORMAT",
    "CATALOG_VERSION",
    "DEFAULT_SHARDS",
    "InlineShardExecutor",
    "ShardCatalog",
    "ShardInfo",
    "ShardPair",
    "ShardRouterJoin",
    "ShardRouterSemiJoin",
    "catalog_for",
    "clear_caches",
    "plan_shard_pairs",
    "result_cache",
    "route_cache",
]
