"""Plan and result caches for the shard router.

Both caches key on *content fingerprints*
(:attr:`repro.shard.catalog.ShardCatalog.fingerprint` is a SHA-1 over
shard membership), so a hit is valid by construction: any insert,
delete, or re-partitioning changes the fingerprint and silently
misses.  Two caches exist:

- the **route cache** memoizes the ordered shard-pair plan -- a pure
  function of (catalog fingerprints, metric, distance range);
- the **result cache** memoizes the complete result rows of a
  finished query keyed additionally by the full
  :class:`~repro.core.spec.JoinSpec` (minus the ``pair_filter``;
  filtered queries are never cached, since an arbitrary callable is
  not part of any key).

Both are small process-wide LRUs.  They serve the repeated-identical-
query pattern of a long-lived service; the benchmark harness bypasses
them so measured counters stay build-inclusive.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable, Optional, Tuple

from repro.core.spec import JoinSpec

#: Default entry bounds (results can be large; plans are tiny).
RESULT_CACHE_ENTRIES = 32
ROUTE_CACHE_ENTRIES = 128


class LRUCache:
    """A bounded mapping evicting the least recently used entry."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: Hashable) -> Optional[Any]:
        try:
            value = self._entries[key]
        except KeyError:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


_RESULT_CACHE = LRUCache(RESULT_CACHE_ENTRIES)
_ROUTE_CACHE = LRUCache(ROUTE_CACHE_ENTRIES)


def result_cache() -> LRUCache:
    """The process-wide result cache."""
    return _RESULT_CACHE


def route_cache() -> LRUCache:
    """The process-wide shard-pair plan cache."""
    return _ROUTE_CACHE


def clear_caches() -> None:
    """Drop all cached plans and results (tests, benchmarks)."""
    _RESULT_CACHE.clear()
    _ROUTE_CACHE.clear()


def spec_cache_key(spec: JoinSpec) -> Tuple:
    """A hashable key covering every result-affecting spec knob.

    The ``pair_filter`` is excluded by construction (callers refuse to
    cache filtered queries); the frozen dataclass with the filter
    nulled is itself hashable and equality-comparable, so the whole
    spec participates -- a conservative key that can only under-share,
    never alias two different queries.
    """
    return (spec.evolve(pair_filter=None),)
