"""Persistent shard catalogs: a relation as a set of small R-trees.

A :class:`ShardCatalog` partitions one relation into disjoint shards
with the same reference-point tilers the parallel engine uses
(:mod:`repro.parallel.partition`), so every object belongs to exactly
one shard and the cross product of two catalogs' shards covers the
join's pair space exactly once.  Each shard carries:

- its exact MBR (union of member rectangles) and object count;
- a content fingerprint (SHA-1 over the members' ids and rectangles),
  so caches and cursors can detect staleness without re-reading data;
- a lazily built R*-tree over the members (STR bulk load, dense local
  object ids) plus the local-id -> original-object translation table;
- a lazily collected :class:`~repro.query.costmodel.TreeStats`
  summary feeding the per-shard cost model.

Catalogs persist as a directory: a ``manifest.json`` (format
``repro-shard-catalog`` version 1) describing every shard, plus one
``storage.snapshot`` tree file per shard.  :meth:`ShardCatalog.open`
reads only the manifest; shard trees load on first use, through each
tree's own pager and buffer pool, so routing that prunes a shard pair
never pays that shard's I/O.

Everything is deterministic: the same relation, shard count, and
method always produce byte-identical shard membership, tree shapes,
and fingerprints -- which is what lets a suspended sharded cursor be
resumed against a rebuilt catalog.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.errors import StorageError
from repro.geometry.rectangle import Rect
from repro.parallel.partition import (
    STR,
    PARTITION_METHODS,
    TaskObject,
    make_partitioner,
)
from repro.query.costmodel import LevelStats, TreeStats, collect_stats
from repro.rtree.base import DEFAULT_MAX_ENTRIES, RTreeBase
from repro.rtree.bulk import bulk_load_str
from repro.storage.snapshot import load_tree, save_tree
from repro.util.counters import CounterRegistry
from repro.util.validation import require

#: Manifest envelope.
CATALOG_FORMAT = "repro-shard-catalog"
CATALOG_VERSION = 1

#: Default shard count when the caller does not choose one.
DEFAULT_SHARDS = 4


@dataclass
class ShardInfo:
    """Metadata for one shard, available without loading its tree."""

    shard_id: int
    tile_index: int
    mbr: Rect
    count: int
    fingerprint: str


def _shard_fingerprint(objects: List[TaskObject]) -> str:
    """SHA-1 over the shard's membership (ids and rectangles).

    ``repr`` of a float is exact in Python 3, so the digest is stable
    across processes and platforms (unlike ``hash()``).
    """
    digest = hashlib.sha1()
    for item in objects:
        digest.update(
            f"{item.oid}:{item.rect.lo!r}:{item.rect.hi!r};".encode()
        )
    return digest.hexdigest()


def _stats_to_json(stats: TreeStats) -> Dict[str, Any]:
    return {
        "size": stats.size,
        "height": stats.height,
        "universe_sides": list(stats.universe_sides),
        "levels": [
            [level.level, level.nodes, level.avg_side]
            for level in stats.levels
        ],
    }


def _stats_from_json(record: Dict[str, Any]) -> TreeStats:
    return TreeStats(
        size=record["size"],
        height=record["height"],
        universe_sides=list(record["universe_sides"]),
        levels=[
            LevelStats(level, nodes, avg_side)
            for level, nodes, avg_side in record["levels"]
        ],
    )


class ShardCatalog:
    """All shards of one relation (see the module docstring).

    Build with :meth:`build` (from an indexed relation) or
    :meth:`open` (from a saved catalog directory); both give the same
    lazy API.  Direct construction is internal.
    """

    def __init__(
        self,
        dim: int,
        method: str,
        shards: int,
        infos: List[ShardInfo],
        *,
        counters: Optional[CounterRegistry] = None,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        objects: Optional[Dict[int, List[TaskObject]]] = None,
        directory: Optional[str] = None,
        paths: Optional[Dict[int, str]] = None,
        oids: Optional[Dict[int, List[int]]] = None,
        stats: Optional[Dict[int, TreeStats]] = None,
        tree_kwargs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.dim = dim
        self.method = method
        self.shards = shards
        self.infos = list(infos)
        self.counters = (
            counters if counters is not None else CounterRegistry()
        )
        self.max_entries = max_entries
        self.directory = directory
        self._objects = objects
        self._paths = paths
        self._oids = oids
        self._tree_kwargs = dict(tree_kwargs or {})
        self._trees: Dict[int, RTreeBase] = {}
        self._tables: Dict[int, List[TaskObject]] = {}
        self._stats: Dict[int, TreeStats] = dict(stats or {})
        self._by_id = {info.shard_id: info for info in self.infos}
        self.fingerprint = self._catalog_fingerprint()

    def _catalog_fingerprint(self) -> str:
        digest = hashlib.sha1()
        digest.update(
            f"{CATALOG_FORMAT}:{CATALOG_VERSION}:{self.dim}:"
            f"{self.method}:{self.shards};".encode()
        )
        for info in self.infos:
            digest.update(f"{info.shard_id}={info.fingerprint};".encode())
        return digest.hexdigest()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        tree: RTreeBase,
        shards: int = DEFAULT_SHARDS,
        method: str = STR,
        *,
        counters: Optional[CounterRegistry] = None,
    ) -> "ShardCatalog":
        """Partition an indexed relation into a shard catalog.

        Shard membership comes from the reference-point tilers, so an
        object belongs to exactly one shard; shard trees themselves
        are not built here -- they materialize on first
        :meth:`tree` call.
        """
        require(shards >= 1, "shards must be at least 1")
        require(method in PARTITION_METHODS,
                f"shard method must be one of {PARTITION_METHODS}")
        registry = counters if counters is not None else tree.counters
        objects: Dict[int, List[TaskObject]] = {}
        infos: List[ShardInfo] = []
        if len(tree) > 0:
            partitioner = make_partitioner(method, tree, tree, shards)
            groups = partitioner.assign(tree.items())
            for shard_id, tile_index in enumerate(sorted(groups)):
                members = groups[tile_index]
                mbr = members[0].rect
                for item in members[1:]:
                    mbr = mbr.union(item.rect)
                objects[shard_id] = members
                infos.append(ShardInfo(
                    shard_id=shard_id,
                    tile_index=tile_index,
                    mbr=mbr,
                    count=len(members),
                    fingerprint=_shard_fingerprint(members),
                ))
        return cls(
            tree.dim, method, shards, infos,
            counters=registry,
            max_entries=getattr(tree, "max_entries", DEFAULT_MAX_ENTRIES),
            objects=objects,
        )

    @classmethod
    def open(
        cls,
        directory: str,
        *,
        counters: Optional[CounterRegistry] = None,
        **tree_kwargs: Any,
    ) -> "ShardCatalog":
        """Open a saved catalog, reading only the manifest.

        ``tree_kwargs`` (``buffer_pages``, ``page_size``) configure
        the pager of every lazily loaded shard tree.
        """
        manifest_path = os.path.join(directory, "manifest.json")
        try:
            with open(manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (OSError, ValueError) as exc:
            raise StorageError(
                f"cannot read shard manifest {manifest_path}: {exc}"
            ) from exc
        if manifest.get("format") != CATALOG_FORMAT:
            raise StorageError(
                f"{manifest_path} is not a shard catalog manifest"
            )
        if manifest.get("version") != CATALOG_VERSION:
            raise StorageError(
                f"unsupported catalog version "
                f"{manifest.get('version')!r} (this build reads "
                f"{CATALOG_VERSION})"
            )
        infos: List[ShardInfo] = []
        paths: Dict[int, str] = {}
        oids: Dict[int, List[int]] = {}
        stats: Dict[int, TreeStats] = {}
        for record in manifest["entries"]:
            shard_id = record["shard_id"]
            infos.append(ShardInfo(
                shard_id=shard_id,
                tile_index=record["tile_index"],
                mbr=Rect(record["mbr"][0], record["mbr"][1]),
                count=record["count"],
                fingerprint=record["fingerprint"],
            ))
            paths[shard_id] = os.path.join(directory, record["path"])
            oids[shard_id] = list(record["oids"])
            if record.get("stats") is not None:
                stats[shard_id] = _stats_from_json(record["stats"])
        catalog = cls(
            manifest["dim"], manifest["method"], manifest["shards"],
            infos,
            counters=counters,
            max_entries=manifest.get(
                "max_entries", DEFAULT_MAX_ENTRIES
            ),
            directory=directory,
            paths=paths,
            oids=oids,
            stats=stats,
            tree_kwargs=tree_kwargs,
        )
        if catalog.fingerprint != manifest["fingerprint"]:
            raise StorageError(
                "shard manifest fingerprint mismatch (manifest edited "
                "or written by an incompatible build)"
            )
        return catalog

    def save(self, directory: str) -> str:
        """Persist the catalog: one snapshot per shard + a manifest.

        Returns the manifest path.  Saving materializes every shard
        tree (they are what gets snapshotted) and their stats, so the
        manifest carries the full per-shard summary.
        """
        os.makedirs(directory, exist_ok=True)
        records = []
        for info in self.infos:
            filename = f"shard-{info.shard_id:04d}.json"
            save_tree(self.tree(info.shard_id),
                      os.path.join(directory, filename))
            records.append({
                "shard_id": info.shard_id,
                "tile_index": info.tile_index,
                "mbr": [list(info.mbr.lo), list(info.mbr.hi)],
                "count": info.count,
                "fingerprint": info.fingerprint,
                "path": filename,
                "oids": [
                    item.oid for item in self.table(info.shard_id)
                ],
                "stats": _stats_to_json(self.stats(info.shard_id)),
            })
        manifest = {
            "format": CATALOG_FORMAT,
            "version": CATALOG_VERSION,
            "dim": self.dim,
            "method": self.method,
            "shards": self.shards,
            "max_entries": self.max_entries,
            "fingerprint": self.fingerprint,
            "entries": records,
        }
        manifest_path = os.path.join(directory, "manifest.json")
        with open(manifest_path, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=1)
        return manifest_path

    # ------------------------------------------------------------------
    # lazy per-shard access
    # ------------------------------------------------------------------

    @property
    def shard_ids(self) -> List[int]:
        return [info.shard_id for info in self.infos]

    def info(self, shard_id: int) -> ShardInfo:
        return self._by_id[shard_id]

    def __len__(self) -> int:
        return len(self.infos)

    def tree(self, shard_id: int) -> RTreeBase:
        """The shard's R-tree, built or loaded on first use."""
        tree = self._trees.get(shard_id)
        if tree is not None:
            return tree
        if self._objects is not None and shard_id in self._objects:
            tree = bulk_load_str(
                [
                    item.obj if item.obj is not None else item.rect
                    for item in self._objects[shard_id]
                ],
                max_entries=self.max_entries,
                counters=self.counters,
            )
        elif self._paths is not None and shard_id in self._paths:
            tree = load_tree(
                self._paths[shard_id],
                counters=self.counters,
                **self._tree_kwargs,
            )
        else:
            raise StorageError(f"unknown shard id {shard_id}")
        self._trees[shard_id] = tree
        return tree

    def table(self, shard_id: int) -> List[TaskObject]:
        """Local-oid -> original :class:`TaskObject` translation."""
        table = self._tables.get(shard_id)
        if table is not None:
            return table
        if self._objects is not None and shard_id in self._objects:
            table = self._objects[shard_id]
        else:
            tree = self.tree(shard_id)
            original = self._oids[shard_id] if self._oids else None
            slots: List[Optional[TaskObject]] = [None] * len(tree)
            for entry in tree.items():
                oid = (
                    original[entry.oid]
                    if original is not None else entry.oid
                )
                slots[entry.oid] = TaskObject(
                    oid, entry.rect, entry.obj
                )
            table = [item for item in slots if item is not None]
        self._tables[shard_id] = table
        return table

    def stats(self, shard_id: int) -> TreeStats:
        """The shard tree's cost-model summary (lazy, cached; saved
        catalogs carry it in the manifest so no tree load is needed)."""
        stats = self._stats.get(shard_id)
        if stats is None:
            stats = collect_stats(self.tree(shard_id))
            self._stats[shard_id] = stats
        return stats

    def __repr__(self) -> str:
        return (
            f"ShardCatalog(shards={len(self.infos)}/{self.shards}, "
            f"method={self.method!r}, dim={self.dim}, "
            f"fingerprint={self.fingerprint[:12]})"
        )


def catalog_for(
    tree: RTreeBase,
    shards: int,
    method: str = STR,
    *,
    counters: Optional[CounterRegistry] = None,
    cache: bool = True,
) -> ShardCatalog:
    """Build (or reuse) the catalog sharding ``tree``.

    Catalogs are memoized on the tree, keyed by the request and the
    tree's structural version (size, root page, mutation counter), so
    repeated sharded queries skip the O(n) partitioning pass.  Pass
    ``cache=False`` to force a fresh build (the benchmark harness does,
    to keep build costs inside its measured counters).
    """
    key = (
        shards, method, len(tree), tree.root_id,
        getattr(tree, "_mutations", None),
    )
    if cache:
        cached = getattr(tree, "_shard_catalogs", None)
        if cached is not None and cached.get((shards, method), (None,))[0] == key:
            return cached[(shards, method)][1]
    catalog = ShardCatalog.build(
        tree, shards, method, counters=counters
    )
    if cache and getattr(tree, "_mutations", None) is not None:
        store = getattr(tree, "_shard_catalogs", None)
        if store is None:
            store = {}
            tree._shard_catalogs = store
        store[(shards, method)] = (key, catalog)
    return catalog
