"""The shard router: a distance join over two shard catalogs.

:class:`ShardRouterJoin` provides the incremental iterator contract of
:class:`~repro.core.distance_join.IncrementalDistanceJoin` -- result
pairs in non-decreasing distance, ``stop after K`` costing only
incremental work -- over relations partitioned into
:class:`~repro.shard.catalog.ShardCatalog` shards.  It plans one task
per shard pair, bounds each task below by
``metric.mindist_rect_rect(mbr1, mbr2)``, and hands the bounds to the
watermark merge's lazy-admission rule
(:class:`~repro.parallel.merge.OrderedStreamMerge`): a shard pair is
*routed* (opened, its shard trees built/loaded, its join run) only
when the merge frontier reaches its bound, and *pruned* -- never
touched at all -- when the consumer stops first.  Shard pairs whose
bound exceeds ``max_distance`` (or whose MAXDIST cannot reach
``min_distance``) are range-pruned before the merge even sees them.

Output is bit-identical to the sequential join with canonical ties
(the same ``(distance, oid1, oid2)`` order the parallel engine
produces) for every shard count and method; the routing decisions are
observable as deterministic counters::

    shard_pairs_total         planned shard pairs (cross product)
    shard_pairs_range_pruned  eliminated upfront by the distance range
    shard_pairs_routed        admitted by the watermark rule
    shard_pairs_pruned        never admitted (finalized when the
                              operator closes; includes range-pruned)

Tasks execute inline -- serially, in this process -- through
:class:`InlineShardExecutor`, which speaks the same
``request``/``next_batch`` protocol as the parallel
:class:`~repro.parallel.executor.StreamExecutor`.  Inline execution
keeps every counter deterministic and, unlike the multiprocessing
parallel join, makes the whole operator *suspendable*:
:meth:`ShardRouterJoin.save` captures the merge state, every opened
task's join cursor and soft-cap position, and the routing counters,
and :meth:`ShardRouterJoin.load` resumes bit-identically against
deterministically rebuilt catalogs.

Completed results are memoized in a small LRU keyed by the two
catalog fingerprints and the spec (:mod:`repro.shard.cache`); a
repeated identical query replays the cached rows without routing
anything.
"""

from __future__ import annotations

import pickle
from collections import deque
from typing import Any, Dict, List, NamedTuple, Optional, Tuple

from repro.core.distance_join import (
    IncrementalDistanceJoin,
    JoinResult,
)
from repro.core.semi_join import IncrementalDistanceSemiJoin
from repro.core.spec import JoinSpec
from repro.errors import CursorError, JoinError
from repro.parallel.executor import DEFAULT_BATCH_SIZE, TaskBatch
from repro.parallel.merge import OrderedStreamMerge
from repro.parallel.partition import STR
from repro.parallel.plan import _translated_filter
from repro.rtree.base import RTreeBase
from repro.shard.cache import (
    result_cache as _result_cache,
    route_cache as _route_cache,
    spec_cache_key,
)
from repro.shard.catalog import (
    DEFAULT_SHARDS,
    ShardCatalog,
    catalog_for,
)
from repro.util.counters import CounterRegistry
from repro.util.obs import Observer
from repro.util.validation import require

CURSOR_FORMAT = "repro-shard-cursor"
CURSOR_VERSION = 1

_INF = float("inf")

#: Shared empty snapshot for inline batches: inline tasks charge the
#: router's registry directly, so batches carry no counter delta.
_EMPTY_COUNTERS = CounterRegistry().full_snapshot()


class ShardPair(NamedTuple):
    """One planned shard-pair task and its admission bound."""

    task_id: int
    sid1: int
    sid2: int
    bound: float


def plan_shard_pairs(
    catalog1: ShardCatalog,
    catalog2: ShardCatalog,
    metric: Any,
    min_distance: float = 0.0,
    max_distance: float = _INF,
) -> Tuple[List[ShardPair], int, bool]:
    """Order shard pairs by MINDIST lower bound; range-prune pairs
    that cannot intersect ``[min_distance, max_distance]``.

    A pure function of its arguments, memoized in the route cache
    (keyed on catalog fingerprints, metric, and range).  Returns
    ``(pairs, range_pruned, cache_hit)``; EXPLAIN calls this directly
    to describe the route without constructing an operator.
    """
    key = (
        catalog1.fingerprint, catalog2.fingerprint,
        type(metric).__name__, repr(metric),
        min_distance, max_distance,
    )
    cached = _route_cache().get(key)
    if cached is not None:
        return cached[0], cached[1], True
    candidates: List[Tuple[float, int, int]] = []
    range_pruned = 0
    for info1 in catalog1.infos:
        for info2 in catalog2.infos:
            bound = metric.mindist_rect_rect(info1.mbr, info2.mbr)
            if bound > max_distance:
                range_pruned += 1
                continue
            if min_distance > 0.0 and metric.maxdist_rect_rect(
                info1.mbr, info2.mbr
            ) < min_distance:
                range_pruned += 1
                continue
            candidates.append(
                (bound, info1.shard_id, info2.shard_id)
            )
    candidates.sort()
    pairs = [
        ShardPair(task_id, sid1, sid2, bound)
        for task_id, (bound, sid1, sid2) in enumerate(candidates)
    ]
    _route_cache().put(key, (pairs, range_pruned))
    return pairs, range_pruned, False


class _InlineTask:
    """State of one shard-pair join executed inline.

    The task is *closed* until its first batch is requested: no shard
    tree is built or loaded, no join constructed.  The per-stream soft
    cap (finish the tie group containing the cap-th result; see
    :func:`repro.parallel.plan._soft_capped`) is kept as explicit
    fields rather than generator state so the task can suspend.
    """

    __slots__ = ("pair", "join", "table1", "table2",
                 "emitted", "boundary", "done")

    def __init__(self, pair: ShardPair) -> None:
        self.pair = pair
        self.join: Optional[IncrementalDistanceJoin] = None
        self.table1: Optional[list] = None
        self.table2: Optional[list] = None
        self.emitted = 0
        self.boundary = float("-inf")
        self.done = False

    @property
    def opened(self) -> bool:
        return self.join is not None

    def _worker_spec(self, router: "ShardRouterJoin") -> JoinSpec:
        spec = router.worker_spec
        if spec.pair_filter is not None:
            spec = spec.evolve(pair_filter=_translated_filter(
                spec.pair_filter, self.table1, self.table2
            ))
        return spec

    def open(self, router: "ShardRouterJoin") -> None:
        tree1 = router.catalog1.tree(self.pair.sid1)
        tree2 = router.catalog2.tree(self.pair.sid2)
        self.table1 = router.catalog1.table(self.pair.sid1)
        self.table2 = router.catalog2.table(self.pair.sid2)
        cls = (
            IncrementalDistanceSemiJoin
            if router._semi_join else IncrementalDistanceJoin
        )
        self.join = cls(
            tree1, tree2, self._worker_spec(router),
            counters=router.counters,
        )

    def advance(
        self, router: "ShardRouterJoin", batch_size: int
    ) -> List[JoinResult]:
        """Pull up to ``batch_size`` translated results."""
        if self.join is None:
            self.open(router)
        cap = router.cap
        results: List[JoinResult] = []
        while len(results) < batch_size and not self.done:
            if cap is not None and self.emitted >= cap:
                # Past the cap: peek one result at a time for the tie
                # tail (the estimation bound stays honest; see
                # _soft_capped).
                self.join.max_pairs = self.emitted + 1
            try:
                result = next(self.join)
            except StopIteration:
                self.done = True
                break
            if (
                cap is not None
                and self.emitted >= cap
                and result.distance > self.boundary
            ):
                self.done = True
                break
            self.boundary = result.distance
            self.emitted += 1
            original1 = self.table1[result.oid1]
            original2 = self.table2[result.oid2]
            results.append(JoinResult(
                result.distance,
                original1.oid, original1.obj,
                original2.oid, original2.obj,
            ))
        return results

    def state(self) -> Dict[str, Any]:
        return {
            "opened": self.opened,
            "emitted": self.emitted,
            "boundary": self.boundary,
            "done": self.done,
            "join": self.join.save() if self.join is not None else None,
        }

    def restore(
        self, router: "ShardRouterJoin", state: Dict[str, Any]
    ) -> None:
        self.emitted = state["emitted"]
        self.boundary = state["boundary"]
        self.done = state["done"]
        if not state["opened"]:
            return
        tree1 = router.catalog1.tree(self.pair.sid1)
        tree2 = router.catalog2.tree(self.pair.sid2)
        self.table1 = router.catalog1.table(self.pair.sid1)
        self.table2 = router.catalog2.table(self.pair.sid2)
        cls = (
            IncrementalDistanceSemiJoin
            if router._semi_join else IncrementalDistanceJoin
        )
        translated = None
        if router.worker_spec.pair_filter is not None:
            translated = self._worker_spec(router).pair_filter
        self.join = cls.load(
            state["join"], tree1, tree2,
            counters=router.counters,
            pair_filter=translated,
        )


class InlineShardExecutor:
    """Drives shard-pair tasks inline, speaking the
    :class:`~repro.parallel.executor.StreamExecutor` protocol the
    watermark merge consumes (``request`` enqueues, ``next_batch``
    advances exactly one requested task and returns its batch)."""

    def __init__(self, router: "ShardRouterJoin") -> None:
        self._router = router
        self.tasks: Dict[int, _InlineTask] = {
            pair.task_id: _InlineTask(pair) for pair in router.pairs
        }
        self._queue: deque = deque()
        self._queued: set = set()

    def request(self, task_id: int, batch_size: int) -> None:
        if task_id not in self._queued:
            self._queued.add(task_id)
            self._queue.append(task_id)

    def next_batch(self, batch_size: int) -> TaskBatch:
        if not self._queue:
            raise JoinError(
                "inline shard executor: no outstanding request"
            )
        task_id = self._queue.popleft()
        self._queued.discard(task_id)
        task = self.tasks[task_id]
        results = task.advance(self._router, batch_size)
        return TaskBatch(
            task_id=task_id,
            results=tuple(results),
            produced=task.emitted,
            done=task.done,
            counters=_EMPTY_COUNTERS,
            worker="inline",
            spans=None,
        )

    def close(self) -> None:
        self._queue.clear()
        self._queued.clear()


class ShardRouterJoin:
    """Cost-bounded shard-routed incremental distance join.

    Parameters
    ----------
    tree1, tree2:
        The two joined relations' indexes (catalogs are derived from
        them unless ``catalogs`` is given).
    shards:
        Shards per relation (default 4); tasks are the cross product
        of the two catalogs' non-empty shards.
    partition_method:
        ``"grid"`` or ``"str"`` tiling for catalog construction.
    catalogs:
        Optional prebuilt ``(catalog1, catalog2)`` pair -- e.g. opened
        from disk with :meth:`ShardCatalog.open` -- overriding
        derivation from the trees.
    batch_size:
        Results per inline task advance.
    catalog_cache:
        Reuse catalogs memoized on the trees (default).  The benchmark
        harness disables this so repeated runs charge identical build
        counters.
    result_cache:
        Memoize completed results keyed by (catalog fingerprints,
        spec); replayed on an identical repeat query.  Automatically
        disabled when a ``pair_filter`` is present.
    spec / **knobs:
        As in :class:`~repro.parallel.join.ParallelDistanceJoin`
        (validated with ``JoinSpec.validate(parallel=True)``: no
        ``descending``, no queue-tier choice).
    counters / observer:
        As in the parallel join; all shard trees and per-pair joins
        charge this registry directly, so counters are exact and --
        inline execution being serial -- deterministic.
    """

    _semi_join = False

    def __init__(
        self,
        tree1: RTreeBase,
        tree2: RTreeBase,
        spec: Optional[JoinSpec] = None,
        *,
        shards: Optional[int] = None,
        partition_method: str = STR,
        catalogs: Optional[Tuple[ShardCatalog, ShardCatalog]] = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        counters: Optional[CounterRegistry] = None,
        observer: Optional[Observer] = None,
        catalog_cache: bool = True,
        result_cache: bool = True,
        **knobs: Any,
    ) -> None:
        if tree1.dim != tree2.dim:
            raise JoinError(
                f"cannot join trees of dimension {tree1.dim} and "
                f"{tree2.dim}"
            )
        spec = JoinSpec.coalesce(spec, knobs)
        spec.validate(parallel=True)
        if shards is None:
            shards = DEFAULT_SHARDS
        require(shards >= 1, "shards must be at least 1")
        require(batch_size >= 1, "batch_size must be at least 1")

        self.spec = spec
        self.tree1 = tree1
        self.tree2 = tree2
        self.shards = shards
        self.partition_method = partition_method
        self.batch_size = batch_size
        self.max_pairs = spec.max_pairs
        self.counters = counters if counters is not None else tree1.counters
        self.obs = observer if observer is not None else Observer(
            max_events=0
        )
        # Semi-join worker streams stay uncapped: duplicate outer
        # objects are discarded only after the merge.
        self.worker_spec = (
            spec.evolve(max_pairs=None) if self._semi_join else spec
        )
        #: Per-stream soft cap for plain joins (None for semi-joins).
        self.cap = None if self._semi_join else spec.max_pairs

        suspended = getattr(self, "_suspended_init", False)
        with self.obs.span("shard.route"):
            if catalogs is not None:
                self.catalog1, self.catalog2 = catalogs
            else:
                self.catalog1 = catalog_for(
                    tree1, shards, partition_method,
                    counters=self.counters, cache=catalog_cache,
                )
                self.catalog2 = catalog_for(
                    tree2, shards, partition_method,
                    counters=self.counters, cache=catalog_cache,
                )
            self.pairs, self.range_pruned = self._plan_pairs()
        self.pairs_total = (
            len(self.catalog1) * len(self.catalog2)
        )

        self._executor: Optional[InlineShardExecutor] = None
        self._merge: Optional[OrderedStreamMerge] = None
        self._produced = 0
        self._routed = 0
        self._closed = False
        self._finalized = False
        self.batches_received = 0

        # Result cache: replay a completed identical query outright.
        self._cache = (
            _result_cache()
            if result_cache_enabled(result_cache, spec) else None
        )
        self._cache_key = (
            self.catalog1.fingerprint,
            self.catalog2.fingerprint,
            self._semi_join,
            spec_cache_key(spec),
        ) if self._cache is not None else None
        self._replay = None
        self._recorded: Optional[List[JoinResult]] = None
        if not suspended:
            self.counters.add("shard_pairs_total", self.pairs_total)
            self.counters.add(
                "shard_pairs_range_pruned", self.range_pruned
            )
            self.counters.observe("shard_partitions", shards)
            if self._cache is not None:
                cached = self._cache.get(self._cache_key)
                if cached is not None:
                    self.counters.add("shard_cache_hits")
                    self._replay = iter(cached)
                    self._finalized = True  # no routing happens
                else:
                    self.counters.add("shard_cache_misses")
                    self._recorded = []

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------

    def _plan_pairs(self) -> Tuple[List[ShardPair], int]:
        """Route via :func:`plan_shard_pairs`, charging the plan-cache
        counter on a memoized hit (silent when resuming a cursor)."""
        spec = self.spec
        pairs, range_pruned, hit = plan_shard_pairs(
            self.catalog1, self.catalog2, spec.metric,
            spec.min_distance, spec.max_distance,
        )
        if hit and not getattr(self, "_suspended_init", False):
            self.counters.add("shard_plan_cache_hits")
        return pairs, range_pruned

    def route_plan(self) -> Dict[str, Any]:
        """Static routing summary (EXPLAIN): shard counts, planned
        pair order, and upfront range pruning."""
        return {
            "shards": (len(self.catalog1), len(self.catalog2)),
            "method": self.partition_method,
            "pairs_total": self.pairs_total,
            "pairs_planned": len(self.pairs),
            "range_pruned": self.range_pruned,
            "order": [
                (pair.sid1, pair.sid2, pair.bound)
                for pair in self.pairs
            ],
        }

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def _on_admit(self, task_id: int) -> None:
        self._routed += 1
        self.counters.add("shard_pairs_routed")

    def _on_batch(self, batch: TaskBatch) -> None:
        self.batches_received += 1
        self.counters.add("shard_batches")

    def _start(self) -> None:
        self._executor = InlineShardExecutor(self)
        self._merge = self._make_merge()

    def _make_merge(self) -> OrderedStreamMerge:
        return OrderedStreamMerge(
            self._executor,
            [pair.task_id for pair in self.pairs],
            self.batch_size,
            on_batch=self._on_batch,
            lower_bounds={
                pair.task_id: pair.bound for pair in self.pairs
            },
            on_admit=self._on_admit,
        )

    def __iter__(self) -> "ShardRouterJoin":
        return self

    def __next__(self) -> JoinResult:
        if self._closed:
            raise StopIteration
        if self.max_pairs is not None and self._produced >= self.max_pairs:
            self._complete()
            raise StopIteration
        if self._replay is not None:
            try:
                result = next(self._replay)
            except StopIteration:
                self.close()
                raise
            self._produced += 1
            self.counters.add("shard_rows_reported")
            return result
        if not self.pairs:
            self._complete()
            raise StopIteration
        if self._merge is None:
            self._start()
        try:
            if self.obs.enabled:
                with self.obs.span("shard.merge"):
                    result = next(self._merge)
            else:
                result = next(self._merge)
        except StopIteration:
            self._complete()
            raise
        self._produced += 1
        self.counters.add("shard_rows_reported")
        if self._recorded is not None:
            self._recorded.append(result)
        return result

    def _complete(self) -> None:
        """Natural end of the stream: the result set for this spec is
        final, so publish it to the result cache, then close."""
        if self._recorded is not None and self._cache is not None:
            self._cache.put(self._cache_key, tuple(self._recorded))
            self._recorded = None
        self.close()

    # ------------------------------------------------------------------
    # lifecycle / introspection
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Finalize routing counters and drop task state.

        Safe to call repeatedly.  Shard pairs never admitted by the
        time the operator closes were *pruned*: the watermark rule
        proved the consumer could not need them.
        """
        if self._closed:
            return
        self._closed = True
        self._recorded = None
        if not self._finalized:
            self._finalized = True
            self.counters.add(
                "shard_pairs_pruned", self.pairs_total - self._routed
            )
        if self._executor is not None:
            self._executor.close()

    def __enter__(self) -> "ShardRouterJoin":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass

    def progress_signals(self) -> Dict[str, Any]:
        """Raw progress facts (see the sequential operator's
        :meth:`progress_signals`).  Unlike the parallel join, the
        router *does* have a certified global head: the merge
        watermark (minimum over admitted stream heads and pending
        shard-pair bounds), which feeds the distance-fraction
        estimate."""
        if self._merge is not None:
            head = self._merge.watermark()
        elif self.pairs:
            head = self.pairs[0].bound
        else:
            head = None
        return {
            "operator": type(self).__name__,
            "produced": self._produced,
            "max_pairs": self.max_pairs,
            "head_distance": head,
            "min_distance": self.spec.min_distance,
            "max_distance": self.spec.max_distance,
            "descending": self.spec.descending,
            "queue_len": 0,
            "done": self._closed or (
                not self.pairs and self._replay is None
            ),
            "batches_received": self.batches_received,
            "tasks": len(self.pairs),
            "shard_pairs_total": self.pairs_total,
            "shard_pairs_routed": self._routed,
        }

    # ------------------------------------------------------------------
    # suspendable cursor: save / load
    # ------------------------------------------------------------------

    def save(self) -> dict:
        """Snapshot the router as a picklable cursor.

        Captures the merge state (per-stream buffers and admission
        flags), every opened task's join cursor plus its soft-cap
        position, the routing counters, and enough configuration to
        rebuild identical catalogs at :meth:`load` time.  Only valid
        between ``next()`` calls.
        """
        if self._replay is not None:
            raise CursorError(
                "cannot save a cache-replay stream; re-run the query "
                "with result_cache=False to get a saveable cursor"
            )
        spec = self.spec
        has_filter = spec.pair_filter is not None
        if has_filter:
            try:
                pickle.dumps(spec.pair_filter, pickle.HIGHEST_PROTOCOL)
            except Exception:
                spec = spec.evolve(pair_filter=None)
        started = self._merge is not None
        return {
            "format": CURSOR_FORMAT,
            "version": CURSOR_VERSION,
            "class": type(self).__name__,
            "spec": spec,
            "has_pair_filter": has_filter,
            "trees": (
                IncrementalDistanceJoin._tree_fingerprint(self.tree1),
                IncrementalDistanceJoin._tree_fingerprint(self.tree2),
            ),
            "catalogs": (
                self.catalog1.fingerprint, self.catalog2.fingerprint
            ),
            "shards": self.shards,
            "partition_method": self.partition_method,
            "batch_size": self.batch_size,
            "started": started,
            "produced": self._produced,
            "routed": self._routed,
            "closed": self._closed,
            "finalized": self._finalized,
            "batches_received": self.batches_received,
            "tasks": {
                task_id: task.state()
                for task_id, task in (
                    self._executor.tasks if self._executor is not None
                    else {}
                ).items()
                if task.opened or task.done
            },
            "merge": self._merge.state() if started else None,
            "counters": self.counters.full_snapshot(),
        }

    @classmethod
    def load(
        cls,
        state: dict,
        tree1: RTreeBase,
        tree2: RTreeBase,
        *,
        counters: Optional[CounterRegistry] = None,
        observer: Optional[Observer] = None,
        pair_filter: Optional[Any] = None,
    ) -> "ShardRouterJoin":
        """Rebuild a suspended router from a :meth:`save` cursor.

        ``tree1``/``tree2`` must be the trees the cursor was taken
        against; catalogs are rebuilt from them deterministically and
        checked against the saved catalog fingerprints (a cursor taken
        over externally supplied catalogs resumes only if rebuilt
        catalogs have identical content).  Counter semantics follow
        the sequential join's :meth:`load`: silent with a supplied
        registry, primed-from-snapshot otherwise.
        """
        if not isinstance(state, dict) or state.get("format") != \
                CURSOR_FORMAT:
            raise CursorError("not a shard-router cursor")
        if state.get("version") != CURSOR_VERSION:
            raise CursorError(
                f"unsupported cursor version {state.get('version')!r} "
                f"(this build reads version {CURSOR_VERSION})"
            )
        if state.get("class") != cls.__name__:
            raise CursorError(
                f"cursor was saved by {state.get('class')!r}; "
                f"load it with that class, not {cls.__name__}"
            )
        fingerprint = IncrementalDistanceJoin._tree_fingerprint
        expected = (fingerprint(tree1), fingerprint(tree2))
        if tuple(map(tuple, state["trees"])) != expected:
            raise CursorError(
                "cursor does not match the supplied trees: saved "
                f"{state['trees']!r}, got {expected!r}"
            )
        spec = state["spec"]
        if pair_filter is not None:
            spec = spec.evolve(pair_filter=pair_filter)
        elif state["has_pair_filter"] and spec.pair_filter is None:
            raise CursorError(
                "the cursor's pair filter was not serializable; "
                "re-supply it via pair_filter="
            )
        registry = counters if counters is not None else CounterRegistry()
        router = cls.__new__(cls)
        router._suspended_init = True
        try:
            router.__init__(
                tree1, tree2, spec,
                shards=state["shards"],
                partition_method=state["partition_method"],
                batch_size=state["batch_size"],
                counters=registry,
                observer=observer,
                result_cache=False,
            )
        finally:
            router.__dict__.pop("_suspended_init", None)
        saved_catalogs = tuple(state["catalogs"])
        rebuilt = (
            router.catalog1.fingerprint, router.catalog2.fingerprint
        )
        if saved_catalogs != rebuilt:
            raise CursorError(
                "rebuilt catalogs do not match the cursor: saved "
                f"{saved_catalogs!r}, got {rebuilt!r}"
            )
        router._produced = state["produced"]
        router._routed = state["routed"]
        router._closed = state["closed"]
        router._finalized = state["finalized"]
        router.batches_received = state["batches_received"]
        if state["started"]:
            router._start()
            router._merge.restore(state["merge"])
            for task_id, task_state in state["tasks"].items():
                router._executor.tasks[task_id].restore(
                    router, task_state
                )
        if counters is None:
            snap = state["counters"]
            for name, value in snap.values.items():
                registry.counter(name).value = value
            for name, peak in snap.peaks.items():
                counter = registry.counter(name)
                if peak > counter.peak:
                    counter.peak = peak
        return router

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(shards="
            f"({len(self.catalog1)}, {len(self.catalog2)}), "
            f"pairs={len(self.pairs)}, routed={self._routed}, "
            f"produced={self._produced})"
        )


class ShardRouterSemiJoin(ShardRouterJoin):
    """Shard-routed distance semi-join.

    Each routed shard pair runs a sequential semi-join (nearest
    inner-shard partner per outer object); the watermark merge
    recombines candidates in global distance order and keeps the first
    result per outer object id, exactly like
    :class:`~repro.parallel.join.ParallelDistanceSemiJoin`.  Lazy
    admission still applies: a candidate at distance ``d`` is only
    emitted once every pending shard pair's bound exceeds ``d``, so a
    closer partner can never hide in a pruned pair.  The merge stops
    as soon as every outer object has been reported; shard pairs still
    pending then are pruned.
    """

    _semi_join = True

    def _make_merge(self) -> OrderedStreamMerge:
        return OrderedStreamMerge(
            self._executor,
            [pair.task_id for pair in self.pairs],
            self.batch_size,
            on_batch=self._on_batch,
            dedup_outer=True,
            expected_outer=len(self.tree1),
            lower_bounds={
                pair.task_id: pair.bound for pair in self.pairs
            },
            on_admit=self._on_admit,
        )


def result_cache_enabled(requested: bool, spec: JoinSpec) -> bool:
    """Result caching applies only to filter-free specs (an arbitrary
    ``pair_filter`` is not part of any cache key)."""
    return bool(requested) and spec.pair_filter is None
