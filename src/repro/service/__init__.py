"""``repro.service``: the preemptable join service.

The paper's defining property -- an incremental distance join's entire
execution state *is* its priority queue -- makes every join a natural
preemptable iterator: run it for a slice, snapshot the queue, resume
later with zero recomputation.  This package turns that property into
a serving layer (the ``next()``/``save()``/``load()`` preemptable-
iterator design popularized by sage-engine's Web-preemptable query
engine):

- :mod:`repro.service.cursor` -- versioned cursor blobs and the
  on-disk spool used for idle-session eviction;
- :mod:`repro.service.session` -- rebuildable query sources and the
  per-client session state;
- :mod:`repro.service.live` -- standing ``WATCH`` subscription
  sources whose pages are incremental repair deltas
  (:mod:`repro.live`, ``docs/LIVE.md``);
- :mod:`repro.service.scheduler` -- the quantum scheduler
  round-robining hundreds of concurrent ``STOP AFTER k`` sessions;
- :mod:`repro.service.server` -- a stdlib-only asyncio HTTP server
  (``repro serve``);
- :mod:`repro.service.client` -- a small synchronous client helper
  used by the tests, the CI smoke job, and the example;
- :mod:`repro.service.overhead` -- the suspend/resume-vs-uninterrupted
  harness behind the ``service`` benchmark family.

See ``docs/SERVICE.md`` for the cursor format, scheduler semantics and
the HTTP API.
"""

from repro.service.client import ServiceClient
from repro.service.cursor import CursorStore, dumps, loads
from repro.service.live import LiveSource
from repro.service.overhead import resumed_join
from repro.service.scheduler import JoinScheduler
from repro.service.server import JoinService
from repro.service.session import QuerySource, Session

__all__ = [
    "CursorStore",
    "JoinScheduler",
    "JoinService",
    "LiveSource",
    "QuerySource",
    "ServiceClient",
    "Session",
    "dumps",
    "loads",
    "resumed_join",
]
