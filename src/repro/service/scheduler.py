"""The quantum scheduler: fair time-slicing of concurrent join sessions.

Because an incremental join's execution state is its priority queue,
suspending it costs nothing beyond *not calling* ``next()`` -- so a
single thread can interleave hundreds of concurrent ``STOP AFTER k``
sessions by running each for a bounded **quantum** (a pair budget and
a wall-clock budget, whichever ends first) and moving on.

Fairness is round-based: :meth:`JoinScheduler.run_round` gives every
session with unmet demand exactly one quantum, in admission order, so
no session starves while any round completes.  A ``STOP AFTER k``
session that exhausts its stream is marked done and its slot freed on
:meth:`remove` (the HTTP layer deletes it; the sync :meth:`fetch` path
leaves that to the caller).

Sessions idle past a threshold are *evicted to disk*: the plan cursor
is spooled through a :class:`~repro.service.cursor.CursorStore` and
the in-memory plan dropped; the next quantum resumes from the spooled
cursor.  Parallel-join sessions suspend in memory only (their worker
pools cannot serialize) and are simply skipped by eviction.

Per-session observers record ``service.quantum`` / ``service.suspend``
/ ``service.resume`` spans and the ``service.quantum_pairs`` gauge;
:meth:`metrics` flattens them into the shared metrics schema with a
``session`` label.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import CursorError, ServiceError
from repro.query.physical import Row
from repro.service.cursor import CursorStore
from repro.service.session import QuerySource, Session
from repro.util.counters import CounterRegistry
from repro.util.obs import KEEP_LAST, Observer, metrics_records
from repro.util.telemetry import (
    RequestTelemetry,
    TraceContext,
    chrome_trace_events,
    span_tree,
    stitched_records,
)
from repro.util.tracing import chrome_trace
from repro.util.validation import require_positive


class JoinScheduler:
    """Admits sessions and runs them in fair, preemptable quanta.

    Parameters
    ----------
    quantum_pairs:
        Maximum result rows one quantum may produce for a session.
    quantum_seconds:
        Wall-clock budget of one quantum (checked between rows; a
        quantum always completes at least one ``next()``).
    max_sessions:
        Admission cap; :meth:`admit` raises
        :class:`~repro.errors.ServiceError` beyond it.
    counters:
        Registry receiving ``service_quanta`` / ``service_rows`` /
        ``service_evictions`` / ``service_resumes`` and the
        ``service_sessions`` gauge.
    cursor_store:
        Spool for idle-session eviction (eviction is disabled when
        omitted).
    telemetry:
        Record request-scoped traces, per-quantum flight-recorder
        samples, and certified progress per session.  Off by default:
        embedded/synchronous users (and the benchmarks) keep the
        allocation-free path; the HTTP service turns it on.
    latency_budget_seconds:
        Quanta exceeding this wall-time budget count as *slow*
        (``service_slow_quanta``) and auto-dump their session's span
        tree plus flight-recorder ring to ``dump_dir``.  None disables
        the budget entirely (no counter exists, no timing comparison).
    dump_dir:
        Directory receiving slow-quantum dumps (created on first use;
        dumps are skipped when omitted).
    """

    def __init__(
        self,
        quantum_pairs: int = 64,
        quantum_seconds: float = 0.05,
        max_sessions: int = 256,
        counters: Optional[CounterRegistry] = None,
        cursor_store: Optional[CursorStore] = None,
        telemetry: bool = False,
        latency_budget_seconds: Optional[float] = None,
        dump_dir: Optional[str] = None,
    ) -> None:
        require_positive(quantum_pairs, "quantum_pairs")
        require_positive(quantum_seconds, "quantum_seconds")
        require_positive(max_sessions, "max_sessions")
        if latency_budget_seconds is not None:
            require_positive(
                latency_budget_seconds, "latency_budget_seconds"
            )
        self.quantum_pairs = quantum_pairs
        self.quantum_seconds = quantum_seconds
        self.max_sessions = max_sessions
        self.counters = counters if counters is not None else CounterRegistry()
        self.store = cursor_store
        self.telemetry = telemetry
        self.latency_budget_seconds = latency_budget_seconds
        self.dump_dir = dump_dir
        self._sessions: Dict[str, Session] = {}
        self._session_seq = 0

    # ------------------------------------------------------------------
    # admission / lookup
    # ------------------------------------------------------------------

    def admit(
        self,
        source: QuerySource,
        session_id: Optional[str] = None,
        trace_ctx: Optional[TraceContext] = None,
    ) -> Session:
        """Register a new session for ``source``; returns it.

        With :attr:`telemetry` on, ``trace_ctx`` (parsed from the
        client's ``traceparent`` header, or minted here) becomes the
        session's trace identity, and the per-session observer is
        upgraded to a flight recorder: per-occurrence span events on a
        ring buffer, injected into the source's join kwargs so the
        operator's own ``join.*``/``pq.*`` spans land in the same
        trace.  Observers never touch counters, so the join's counter
        bit-identity (and the bench gates) are unaffected.
        """
        if len(self._sessions) >= self.max_sessions:
            raise ServiceError(
                f"service full: {self.max_sessions} concurrent "
                "sessions"
            )
        if session_id is None:
            self._session_seq += 1
            session_id = f"s{self._session_seq:06d}"
        if session_id in self._sessions:
            raise ServiceError(f"session {session_id!r} already exists")
        if self.telemetry:
            tel = RequestTelemetry(
                ctx=trace_ctx if trace_ctx is not None
                else TraceContext.mint()
            )
            observer = Observer(
                max_events=256, event_policy=KEEP_LAST,
                trace_spans=True,
            )
            observer.trace_ctx = tel.ctx
            source.join_kwargs.setdefault("observer", observer)
            session = Session(
                session_id, source, observer=observer, telemetry=tel
            )
            session.obs_anchor = tel.now()
        else:
            session = Session(session_id, source, observer=Observer(
                max_events=64
            ))
        self._sessions[session_id] = session
        self.counters.observe("service_sessions", len(self._sessions))
        return session

    def session(self, session_id: str) -> Session:
        """The session for ``session_id`` (ServiceError if unknown)."""
        try:
            return self._sessions[session_id]
        except KeyError:
            raise ServiceError(
                f"unknown session {session_id!r}"
            ) from None

    def sessions(self) -> List[Session]:
        """All live sessions in admission (round-robin) order."""
        return list(self._sessions.values())

    def remove(self, session_id: str) -> None:
        """Terminate a session and free its slot.

        Closes the underlying operator when it has a lifecycle (the
        parallel join's worker pool) and drops any spooled cursor.
        """
        session = self.session(session_id)
        plan = session.source.plan
        join = getattr(plan, "join_op", None) if plan is not None \
            else None
        live = getattr(join, "_join", None) if join is not None else None
        if live is not None and hasattr(live, "close"):
            live.close()
        if self.store is not None:
            self.store.delete(session_id)
        del self._sessions[session_id]
        self.counters.observe("service_sessions", len(self._sessions))

    # ------------------------------------------------------------------
    # quantum execution
    # ------------------------------------------------------------------

    def request(self, session_id: str, k: int) -> Session:
        """The client asks for ``k`` more rows of a session."""
        require_positive(k, "k")
        session = self.session(session_id)
        session.demand += k
        session.touch()
        return session

    def run_quantum(self, session: Session) -> int:
        """Run one quantum for ``session``; returns rows buffered.

        The quantum ends at the first of: the pair budget, the time
        budget, the session's demand being met, a parallel worker
        batch arriving (the TaskBatch-aware preemption point), or the
        stream ending.
        """
        if session.done:
            return 0
        if hasattr(session.source, "poll"):
            # A standing WATCH subscription: its "rows" are repair
            # deltas paged from the StandingJoin outbox, and it never
            # exhausts.
            return self._run_live_quantum(session)
        if session.evicted:
            self.resume(session)
        produced = 0
        deadline = time.monotonic() + self.quantum_seconds
        rows = session.rows()
        live = self._live_join(session)
        batch_mark = getattr(live, "batches_received", None)
        tel = session.tel
        quantum_start = tel.now() if tel.enabled else 0.0
        with tel.span(
            "service.quantum", session=session.id,
            quantum=session.quanta,
        ):
            with session.obs.span("service.quantum"):
                while (
                    produced < self.quantum_pairs
                    and len(session.buffer) < session.demand
                ):
                    try:
                        row = next(rows)
                    except StopIteration:
                        session.done = True
                        break
                    session.buffer.append(row)
                    produced += 1
                    if time.monotonic() >= deadline:
                        break
                    if batch_mark is not None:
                        # Parallel sources preempt between tile
                        # batches: a batch arrival is the natural
                        # yield point.
                        current = getattr(live, "batches_received", 0)
                        if current > batch_mark:
                            break
        session.quanta += 1
        session.obs.gauge("service.quantum_pairs", float(produced))
        self.counters.add("service_quanta")
        if produced:
            self.counters.add("service_rows", produced)
        if tel.enabled:
            self._record_flight(session, produced)
            if self.latency_budget_seconds is not None:
                elapsed = tel.now() - quantum_start
                if elapsed > self.latency_budget_seconds:
                    self._on_slow_quantum(session, elapsed)
        return produced

    def _run_live_quantum(self, session: Session) -> int:
        """One quantum of a standing subscription.

        Pages pending deltas from the subscription's outbox into the
        session buffer, up to the pair budget.  An empty quantum means
        no repairs are pending -- the session is never marked done
        (subscriptions end only by ``DELETE /session``).
        """
        if session.evicted:
            self.resume(session)
        budget = min(
            self.quantum_pairs,
            max(0, session.demand - len(session.buffer)),
        )
        tel = session.tel
        with tel.span(
            "service.quantum", session=session.id,
            quantum=session.quanta,
        ):
            with session.obs.span("service.quantum"):
                deltas = session.source.poll(budget) if budget else []
                session.buffer.extend(deltas)
        produced = len(deltas)
        session.quanta += 1
        session.obs.gauge("service.quantum_pairs", float(produced))
        self.counters.add("service_quanta")
        if produced:
            self.counters.add("service_rows", produced)
        return produced

    def run_round(self) -> int:
        """One fairness round: a quantum per session with unmet demand.

        Returns the total rows produced; 0 means no session can make
        progress (all demands met, done, or no sessions).
        """
        produced = 0
        for session in list(self._sessions.values()):
            if session.pending:
                produced += self.run_quantum(session)
        return produced

    def take(
        self, session_id: str, k: Optional[int] = None
    ) -> Tuple[List[Row], bool]:
        """Pop up to ``k`` buffered rows (all buffered when None).

        Returns ``(rows, exhausted)`` where ``exhausted`` is True once
        the stream ended and the buffer is drained.
        """
        session = self.session(session_id)
        count = len(session.buffer) if k is None else min(
            k, len(session.buffer)
        )
        rows = [session.buffer.popleft() for __ in range(count)]
        session.demand = max(0, session.demand - count)
        session.emitted_total += count
        session.touch()
        return rows, session.done and not session.buffer

    def fetch(self, session_id: str, k: int) -> Tuple[List[Row], bool]:
        """Synchronous convenience: demand ``k`` rows and run rounds
        until they are buffered (or the stream ends), then take them.

        Other pending sessions advance too -- every round is fair.
        """
        self.request(session_id, k)
        session = self.session(session_id)
        while session.pending:
            if self.run_round() == 0 and session.pending:
                break
        return self.take(session_id, k)

    # ------------------------------------------------------------------
    # eviction / resume
    # ------------------------------------------------------------------

    def evict_idle(self, idle_seconds: float) -> List[str]:
        """Spool sessions idle past ``idle_seconds`` to disk.

        Returns the evicted session ids.  Sessions with unmet demand,
        already-evicted sessions, and operators that cannot serialize
        (parallel joins) are skipped.
        """
        if self.store is None:
            return []
        evicted: List[str] = []
        for session in list(self._sessions.values()):
            if (
                session.evicted
                or session.pending
                or session.done
                or session.idle_seconds() < idle_seconds
            ):
                continue
            try:
                with session.obs.span("service.suspend"):
                    state = session.suspend_to_state()
                    path = self.store.save(session.id, state)
            except CursorError:
                continue
            try:
                session.spooled_bytes = os.path.getsize(path)
            except OSError:
                session.spooled_bytes = 0
            evicted.append(session.id)
            self.counters.add("service_evictions")
        return evicted

    def resume(self, session: Session) -> None:
        """Reload an evicted session's cursor from the spool.

        Quantum execution resumes lazily, but callers that are about
        to invalidate a spooled cursor (the update path mutating a
        watched tree) must resume the session first.
        """
        if self.store is None:
            raise ServiceError(
                f"session {session.id!r} was evicted but the "
                "scheduler has no cursor store"
            )
        with session.obs.span("service.resume"):
            state = self.store.load(session.id)
            session.resume_from_state(state)
        self.store.delete(session.id)
        self.counters.add("service_resumes")

    def _live_join(self, session: Session) -> Any:
        plan = session.source.plan
        if plan is None:
            return None
        return getattr(plan.join_op, "_join", None)

    # ------------------------------------------------------------------
    # flight recorder / slow-quantum dumps
    # ------------------------------------------------------------------

    def _record_flight(self, session: Session, produced: int) -> None:
        """One flight-recorder sample at the end of a quantum.

        Queue depth, head distance, and band occupancy land both as
        bounded gauge timelines and as one ring event, and the
        certified progress ratchet advances.  Everything here is a
        pure probe: no disk reads, no counters.
        """
        obs = session.obs
        report = session.progress_report()
        detail = report.get("detail", {})
        queue_len = detail.get("queue_len")
        if queue_len is not None:
            obs.gauge("service.queue_len", float(queue_len))
        head = detail.get("head_distance")
        if head is not None:
            obs.gauge("service.head_distance", float(head))
        occupancy = detail.get("occupancy") or {}
        disk = occupancy.get("disk")
        if disk is not None:
            obs.gauge("service.pq_disk", float(disk))
            obs.gauge(
                "service.pq_bands", float(occupancy.get("bands", 0))
            )
        obs.event(
            "flight",
            label=(
                f"pairs={produced} queue={queue_len} head={head} "
                f"disk={occupancy.get('disk', 0)} "
                f"progress>={report['lower_bound']:.3f}"
            ),
            value=float(produced),
        )

    def _on_slow_quantum(
        self, session: Session, elapsed: float
    ) -> None:
        """A quantum blew the latency budget: count it and dump the
        session's stitched span tree plus flight-recorder ring."""
        self.counters.add("service_slow_quanta")
        session.obs.event(
            "slow_quantum", label=f"elapsed={elapsed:.4f}s",
            value=elapsed,
        )
        if self.dump_dir is None:
            return
        os.makedirs(self.dump_dir, exist_ok=True)
        path = os.path.join(
            self.dump_dir,
            f"slow-{session.id}-q{session.quanta:05d}.json",
        )
        dump = {
            "session": session.id,
            "trace_id": session.tel.ctx.trace_id,
            "quantum": session.quanta,
            "elapsed_s": elapsed,
            "budget_s": self.latency_budget_seconds,
            "trace": self.trace_dump(session.id),
            "ring": [
                {
                    "seq": event.seq, "t": event.t,
                    "kind": event.kind, "label": event.label,
                    "value": event.value,
                }
                for event in session.obs.events
            ],
        }
        with open(path, "w") as handle:
            json.dump(dump, handle)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def progress(self) -> Dict[str, Any]:
        """Certified progress per session (session id keyed)."""
        return {
            session.id: session.progress_report()
            for session in self._sessions.values()
        }

    def debug_sessions(self) -> List[Dict[str, Any]]:
        """One diagnostic record per session: status, cursor size,
        quantum count, and the certified progress report."""
        records = []
        for session in self._sessions.values():
            record = session.stats()
            record["spooled_bytes"] = session.spooled_bytes
            record["progress"] = session.progress_report()
            record["trace_spans"] = len(session.tel.spans)
            records.append(record)
        return records

    def _stitched(self, session: Session) -> List[Any]:
        """The session's stitched span records: telemetry spans plus
        grafted operator span events and parallel-worker tracks."""
        observers = []
        if session.obs.enabled and session.obs.trace_spans:
            observers.append((session.obs, session.obs_anchor, ""))
        worker_tracks = []
        live = self._live_join(session)
        snapshots = getattr(live, "task_span_snapshots", None)
        if snapshots is not None:
            worker_tracks.append((
                snapshots(),
                getattr(live, "_task_workers", {}),
                session.obs_anchor,
                None,
            ))
        return stitched_records(
            session.tel,
            observers=observers,
            worker_tracks=worker_tracks,
            exclude_prefixes=("service.",),
        )

    def trace_dump(
        self, session_id: str, fmt: str = "json"
    ) -> Dict[str, Any]:
        """The session's single connected trace, as a nested JSON span
        tree (``fmt="json"``) or a Chrome trace-event container
        (``fmt="chrome"``)."""
        session = self.session(session_id)
        if not session.tel.enabled:
            raise ServiceError(
                f"session {session_id!r} has no telemetry (the "
                "scheduler was built with telemetry=False)"
            )
        records = self._stitched(session)
        if fmt == "chrome":
            return chrome_trace(
                chrome_trace_events(session.tel, records)
            )
        if fmt != "json":
            raise ServiceError(
                f"unknown trace format {fmt!r} (json or chrome)"
            )
        return span_tree(session.tel, records)

    def status(self) -> Dict[str, Any]:
        """A JSON-friendly snapshot of the whole scheduler."""
        return {
            "sessions": [s.stats() for s in self._sessions.values()],
            "session_count": len(self._sessions),
            "max_sessions": self.max_sessions,
            "quantum_pairs": self.quantum_pairs,
            "quantum_seconds": self.quantum_seconds,
            "counters": dict(self.counters.snapshot()),
        }

    def metrics(
        self, labels: Optional[Dict[str, Any]] = None
    ) -> List[Dict[str, Any]]:
        """Scheduler counters plus per-session spans/gauges, in the
        shared metrics schema (one ``session`` label per session)."""
        records = metrics_records(self.counters, labels=labels)
        for session in self._sessions.values():
            session_labels = dict(labels or {})
            session_labels["session"] = session.id
            records.extend(metrics_records(
                obs=session.obs, labels=session_labels
            ))
        return records
