"""The quantum scheduler: fair time-slicing of concurrent join sessions.

Because an incremental join's execution state is its priority queue,
suspending it costs nothing beyond *not calling* ``next()`` -- so a
single thread can interleave hundreds of concurrent ``STOP AFTER k``
sessions by running each for a bounded **quantum** (a pair budget and
a wall-clock budget, whichever ends first) and moving on.

Fairness is round-based: :meth:`JoinScheduler.run_round` gives every
session with unmet demand exactly one quantum, in admission order, so
no session starves while any round completes.  A ``STOP AFTER k``
session that exhausts its stream is marked done and its slot freed on
:meth:`remove` (the HTTP layer deletes it; the sync :meth:`fetch` path
leaves that to the caller).

Sessions idle past a threshold are *evicted to disk*: the plan cursor
is spooled through a :class:`~repro.service.cursor.CursorStore` and
the in-memory plan dropped; the next quantum resumes from the spooled
cursor.  Parallel-join sessions suspend in memory only (their worker
pools cannot serialize) and are simply skipped by eviction.

Per-session observers record ``service.quantum`` / ``service.suspend``
/ ``service.resume`` spans and the ``service.quantum_pairs`` gauge;
:meth:`metrics` flattens them into the shared metrics schema with a
``session`` label.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import CursorError, ServiceError
from repro.query.physical import Row
from repro.service.cursor import CursorStore
from repro.service.session import QuerySource, Session
from repro.util.counters import CounterRegistry
from repro.util.obs import Observer, metrics_records
from repro.util.validation import require_positive


class JoinScheduler:
    """Admits sessions and runs them in fair, preemptable quanta.

    Parameters
    ----------
    quantum_pairs:
        Maximum result rows one quantum may produce for a session.
    quantum_seconds:
        Wall-clock budget of one quantum (checked between rows; a
        quantum always completes at least one ``next()``).
    max_sessions:
        Admission cap; :meth:`admit` raises
        :class:`~repro.errors.ServiceError` beyond it.
    counters:
        Registry receiving ``service_quanta`` / ``service_rows`` /
        ``service_evictions`` / ``service_resumes`` and the
        ``service_sessions`` gauge.
    cursor_store:
        Spool for idle-session eviction (eviction is disabled when
        omitted).
    """

    def __init__(
        self,
        quantum_pairs: int = 64,
        quantum_seconds: float = 0.05,
        max_sessions: int = 256,
        counters: Optional[CounterRegistry] = None,
        cursor_store: Optional[CursorStore] = None,
    ) -> None:
        require_positive(quantum_pairs, "quantum_pairs")
        require_positive(quantum_seconds, "quantum_seconds")
        require_positive(max_sessions, "max_sessions")
        self.quantum_pairs = quantum_pairs
        self.quantum_seconds = quantum_seconds
        self.max_sessions = max_sessions
        self.counters = counters if counters is not None else CounterRegistry()
        self.store = cursor_store
        self._sessions: Dict[str, Session] = {}
        self._session_seq = 0

    # ------------------------------------------------------------------
    # admission / lookup
    # ------------------------------------------------------------------

    def admit(
        self,
        source: QuerySource,
        session_id: Optional[str] = None,
    ) -> Session:
        """Register a new session for ``source``; returns it."""
        if len(self._sessions) >= self.max_sessions:
            raise ServiceError(
                f"service full: {self.max_sessions} concurrent "
                "sessions"
            )
        if session_id is None:
            self._session_seq += 1
            session_id = f"s{self._session_seq:06d}"
        if session_id in self._sessions:
            raise ServiceError(f"session {session_id!r} already exists")
        session = Session(session_id, source, observer=Observer(
            max_events=64
        ))
        self._sessions[session_id] = session
        self.counters.observe("service_sessions", len(self._sessions))
        return session

    def session(self, session_id: str) -> Session:
        """The session for ``session_id`` (ServiceError if unknown)."""
        try:
            return self._sessions[session_id]
        except KeyError:
            raise ServiceError(
                f"unknown session {session_id!r}"
            ) from None

    def sessions(self) -> List[Session]:
        """All live sessions in admission (round-robin) order."""
        return list(self._sessions.values())

    def remove(self, session_id: str) -> None:
        """Terminate a session and free its slot.

        Closes the underlying operator when it has a lifecycle (the
        parallel join's worker pool) and drops any spooled cursor.
        """
        session = self.session(session_id)
        plan = session.source.plan
        join = getattr(plan, "join_op", None) if plan is not None \
            else None
        live = getattr(join, "_join", None) if join is not None else None
        if live is not None and hasattr(live, "close"):
            live.close()
        if self.store is not None:
            self.store.delete(session_id)
        del self._sessions[session_id]
        self.counters.observe("service_sessions", len(self._sessions))

    # ------------------------------------------------------------------
    # quantum execution
    # ------------------------------------------------------------------

    def request(self, session_id: str, k: int) -> Session:
        """The client asks for ``k`` more rows of a session."""
        require_positive(k, "k")
        session = self.session(session_id)
        session.demand += k
        session.touch()
        return session

    def run_quantum(self, session: Session) -> int:
        """Run one quantum for ``session``; returns rows buffered.

        The quantum ends at the first of: the pair budget, the time
        budget, the session's demand being met, a parallel worker
        batch arriving (the TaskBatch-aware preemption point), or the
        stream ending.
        """
        if session.done:
            return 0
        if session.evicted:
            self._resume(session)
        produced = 0
        deadline = time.monotonic() + self.quantum_seconds
        rows = session.rows()
        live = self._live_join(session)
        batch_mark = getattr(live, "batches_received", None)
        with session.obs.span("service.quantum"):
            while (
                produced < self.quantum_pairs
                and len(session.buffer) < session.demand
            ):
                try:
                    row = next(rows)
                except StopIteration:
                    session.done = True
                    break
                session.buffer.append(row)
                produced += 1
                if time.monotonic() >= deadline:
                    break
                if batch_mark is not None:
                    # Parallel sources preempt between tile batches:
                    # a batch arrival is the natural yield point.
                    current = getattr(live, "batches_received", 0)
                    if current > batch_mark:
                        break
        session.quanta += 1
        session.obs.gauge("service.quantum_pairs", float(produced))
        self.counters.add("service_quanta")
        if produced:
            self.counters.add("service_rows", produced)
        return produced

    def run_round(self) -> int:
        """One fairness round: a quantum per session with unmet demand.

        Returns the total rows produced; 0 means no session can make
        progress (all demands met, done, or no sessions).
        """
        produced = 0
        for session in list(self._sessions.values()):
            if session.pending:
                produced += self.run_quantum(session)
        return produced

    def take(
        self, session_id: str, k: Optional[int] = None
    ) -> Tuple[List[Row], bool]:
        """Pop up to ``k`` buffered rows (all buffered when None).

        Returns ``(rows, exhausted)`` where ``exhausted`` is True once
        the stream ended and the buffer is drained.
        """
        session = self.session(session_id)
        count = len(session.buffer) if k is None else min(
            k, len(session.buffer)
        )
        rows = [session.buffer.popleft() for __ in range(count)]
        session.demand = max(0, session.demand - count)
        session.emitted_total += count
        session.touch()
        return rows, session.done and not session.buffer

    def fetch(self, session_id: str, k: int) -> Tuple[List[Row], bool]:
        """Synchronous convenience: demand ``k`` rows and run rounds
        until they are buffered (or the stream ends), then take them.

        Other pending sessions advance too -- every round is fair.
        """
        self.request(session_id, k)
        session = self.session(session_id)
        while session.pending:
            if self.run_round() == 0 and session.pending:
                break
        return self.take(session_id, k)

    # ------------------------------------------------------------------
    # eviction / resume
    # ------------------------------------------------------------------

    def evict_idle(self, idle_seconds: float) -> List[str]:
        """Spool sessions idle past ``idle_seconds`` to disk.

        Returns the evicted session ids.  Sessions with unmet demand,
        already-evicted sessions, and operators that cannot serialize
        (parallel joins) are skipped.
        """
        if self.store is None:
            return []
        evicted: List[str] = []
        for session in list(self._sessions.values()):
            if (
                session.evicted
                or session.pending
                or session.done
                or session.idle_seconds() < idle_seconds
            ):
                continue
            try:
                with session.obs.span("service.suspend"):
                    state = session.suspend_to_state()
                    self.store.save(session.id, state)
            except CursorError:
                continue
            evicted.append(session.id)
            self.counters.add("service_evictions")
        return evicted

    def _resume(self, session: Session) -> None:
        if self.store is None:
            raise ServiceError(
                f"session {session.id!r} was evicted but the "
                "scheduler has no cursor store"
            )
        with session.obs.span("service.resume"):
            state = self.store.load(session.id)
            session.resume_from_state(state)
        self.store.delete(session.id)
        self.counters.add("service_resumes")

    def _live_join(self, session: Session) -> Any:
        plan = session.source.plan
        if plan is None:
            return None
        return getattr(plan.join_op, "_join", None)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def status(self) -> Dict[str, Any]:
        """A JSON-friendly snapshot of the whole scheduler."""
        return {
            "sessions": [s.stats() for s in self._sessions.values()],
            "session_count": len(self._sessions),
            "max_sessions": self.max_sessions,
            "quantum_pairs": self.quantum_pairs,
            "quantum_seconds": self.quantum_seconds,
            "counters": dict(self.counters.snapshot()),
        }

    def metrics(
        self, labels: Optional[Dict[str, Any]] = None
    ) -> List[Dict[str, Any]]:
        """Scheduler counters plus per-session spans/gauges, in the
        shared metrics schema (one ``session`` label per session)."""
        records = metrics_records(self.counters, labels=labels)
        for session in self._sessions.values():
            session_labels = dict(labels or {})
            session_labels["session"] = session.id
            records.extend(metrics_records(
                obs=session.obs, labels=session_labels
            ))
        return records
