"""Query sources and sessions: the units the scheduler time-slices.

A :class:`QuerySource` is a *rebuildable* row stream: the SQL text,
the strategy, and the join kwargs needed to lower it into a physical
plan against a :class:`~repro.query.executor.Database`.  Saving one
captures the plan's operator cursor
(:meth:`repro.query.physical.PhysicalNode.save`); loading rebuilds the
plan from the same text and restores the cursor into it, so a resumed
stream continues bit-identically.

A :class:`Session` wraps a source with the per-client state the
scheduler needs: a result buffer, outstanding demand, quantum
statistics, and a private :class:`~repro.util.obs.Observer` whose
spans/gauges flow into the service metrics under a ``session`` label.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any, Deque, Dict, Iterator, Optional

from repro.errors import CursorError
from repro.query.physical import PhysicalPlan, Row
from repro.util.obs import Observer
from repro.util.telemetry import (
    NULL_TELEMETRY,
    ProgressEstimator,
    RequestTelemetry,
)

#: Envelope marker for saved query sources.
SOURCE_FORMAT = "repro-service-session"
SOURCE_VERSION = 1


class QuerySource:
    """A rebuildable query row stream bound to a database.

    Parameters
    ----------
    db:
        The :class:`~repro.query.executor.Database` to plan against.
    sql:
        Query text (the cursor pins it: a cursor saved for one query
        cannot resume another).
    strategy:
        Plan strategy (``auto`` / ``pipeline`` / ``prefilter``).
    join_kwargs:
        Extra keyword arguments forwarded to the join operator
        (``observer``, queue knobs, ...).
    """

    def __init__(
        self,
        db: Any,
        sql: str,
        strategy: str = "auto",
        join_kwargs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.db = db
        self.sql = sql
        self.strategy = strategy
        self.join_kwargs = dict(join_kwargs or {})
        self._plan: Optional[PhysicalPlan] = None
        self._rows: Optional[Iterator[Row]] = None

    @property
    def plan(self) -> Optional[PhysicalPlan]:
        """The physical plan, once opened (None before)."""
        return self._plan

    def open(self) -> Iterator[Row]:
        """Build the plan (once) and return the row iterator."""
        if self._rows is None:
            self._plan = self.db.physical_plan(
                self.sql, strategy=self.strategy, **self.join_kwargs
            )
            self._rows = self._plan.rows()
        return self._rows

    def release(self) -> None:
        """Drop the plan and iterator (after :meth:`save`, to evict)."""
        self._plan = None
        self._rows = None

    def save(self) -> Dict[str, Any]:
        """Snapshot the source as a picklable cursor state.

        Raises :class:`~repro.errors.CursorError` when the underlying
        operator cannot serialize (the multiprocessing parallel join).
        """
        return {
            "format": SOURCE_FORMAT,
            "version": SOURCE_VERSION,
            "sql": self.sql,
            "strategy": self.strategy,
            "plan": self._plan.save() if self._plan is not None else None,
        }

    def load(self, state: Dict[str, Any]) -> None:
        """Restore a :meth:`save` snapshot in place.

        Rebuilds the physical plan from the stored SQL and strategy
        against :attr:`db` and restores the operator cursor into it;
        the next ``next()`` continues where the suspended run stopped.
        """
        if (
            not isinstance(state, dict)
            or state.get("format") != SOURCE_FORMAT
        ):
            raise CursorError("not a query-source cursor")
        if state.get("version") != SOURCE_VERSION:
            raise CursorError(
                f"unsupported source cursor version "
                f"{state.get('version')!r} (this build reads "
                f"{SOURCE_VERSION})"
            )
        self.sql = state["sql"]
        self.strategy = state["strategy"]
        self._plan = self.db.physical_plan(
            self.sql, strategy=self.strategy, **self.join_kwargs
        )
        if state["plan"] is not None:
            self._plan.restore(state["plan"])
        self._rows = self._plan.rows()


class Session:
    """One client's suspended/running query inside the scheduler.

    Attributes
    ----------
    id:
        The session id handed to the client.
    source:
        The :class:`QuerySource` being consumed.
    obs:
        Per-session observer; ``service.quantum`` / ``service.suspend``
        / ``service.resume`` spans and the ``service.quantum_pairs``
        gauge land here.
    buffer:
        Rows produced but not yet taken by the client.
    demand:
        Rows the client is currently waiting for.
    """

    def __init__(
        self,
        session_id: str,
        source: QuerySource,
        observer: Optional[Observer] = None,
        telemetry: Optional[RequestTelemetry] = None,
    ) -> None:
        self.id = session_id
        self.source = source
        self.obs = observer if observer is not None else Observer(
            max_events=64
        )
        #: Request-scoped trace recorder; :data:`NULL_TELEMETRY` keeps
        #: every hook a single attribute read when tracing is off.
        self.tel = telemetry if telemetry is not None else NULL_TELEMETRY
        #: Telemetry-clock time at which :attr:`obs` started (its t=0);
        #: trace stitching aligns observer span events with it.
        self.obs_anchor = 0.0
        #: Certified progress ratchet; survives suspend/resume via the
        #: cursor envelope.
        self.progress_est = ProgressEstimator()
        self.last_progress: Optional[Dict[str, Any]] = None
        #: Size of the spooled cursor while evicted (0 when live).
        self.spooled_bytes = 0
        self.buffer: Deque[Row] = deque()
        self.demand = 0
        self.emitted_total = 0
        self.quanta = 0
        self.done = False
        self.evicted = False
        self.last_touch = time.monotonic()
        self._rows: Optional[Iterator[Row]] = None

    def touch(self) -> None:
        """Record client activity (defers idle eviction)."""
        self.last_touch = time.monotonic()

    def idle_seconds(self) -> float:
        """Seconds since the client last touched this session."""
        return time.monotonic() - self.last_touch

    @property
    def pending(self) -> bool:
        """True while the client waits for rows this session owes.

        Evicted sessions count: the scheduler resumes them from the
        spool at the start of their next quantum.
        """
        return not self.done and len(self.buffer) < self.demand

    def rows(self) -> Iterator[Row]:
        """The live row iterator (opens the source on first use)."""
        if self._rows is None:
            self._rows = self.source.open()
        return self._rows

    def suspend_to_state(self) -> Dict[str, Any]:
        """Serialize for eviction and drop the in-memory plan.

        The trace context and the progress ratchet ride in the cursor
        envelope (extra keys; :meth:`QuerySource.load` ignores them),
        so a session resumed in a *different* process keeps its trace
        identity, its span history, and its certified floor.

        Raises :class:`~repro.errors.CursorError` for operators that
        only support in-memory suspension (parallel joins).
        """
        # Pin the latest certified reading before the plan goes away.
        self.progress_report()
        state = self.source.save()
        if self.tel.enabled:
            state["telemetry"] = self.tel.state()
        state["progress"] = self.progress_est.state()
        self.source.release()
        self._rows = None
        self.evicted = True
        return state

    def resume_from_state(self, state: Dict[str, Any]) -> None:
        """Rebuild the plan from an eviction cursor.

        An in-process resume keeps the live telemetry and estimator
        objects (they never went away and their clocks are newer than
        the snapshot); a fresh process restores both from the
        envelope, ratcheting the progress floor so it can only move
        forward.
        """
        self.source.load(state)
        if not self.tel.enabled and "telemetry" in state:
            self.tel = RequestTelemetry.restore(state["telemetry"])
        saved_progress = state.get("progress")
        if saved_progress is not None:
            restored = ProgressEstimator.restore(saved_progress)
            if restored.lower_bound > self.progress_est.lower_bound:
                self.progress_est = restored
        self._rows = self.source.open()
        self.evicted = False
        self.spooled_bytes = 0

    def progress_report(self) -> Dict[str, Any]:
        """The session's certified progress (a dict view of
        :class:`~repro.util.telemetry.ProgressReport`).

        Probes the live plan when one is open; an evicted session
        reports its last reading (the floor cannot move while the
        plan is spooled).  Session completion forces ``done`` -- the
        stream is exhausted even if the operator would still report a
        non-empty queue (e.g. ``STOP AFTER`` met at the plan root).
        """
        plan = self.source.plan
        signals = plan.progress_signals() if plan is not None else None
        if signals is None:
            if self.last_progress is not None and not self.done:
                return self.last_progress
            signals = {
                "produced": self.emitted_total,
                "max_pairs": None,
            }
        signals["emitted_total"] = self.emitted_total
        if self.done:
            signals["done"] = True
        report = self.progress_est.report(signals).as_dict()
        self.last_progress = report
        return report

    def stats(self) -> Dict[str, Any]:
        """A JSON-friendly status snapshot."""
        return {
            "session": self.id,
            "sql": self.source.sql,
            "strategy": self.source.strategy,
            "emitted": self.emitted_total,
            "buffered": len(self.buffer),
            "demand": self.demand,
            "quanta": self.quanta,
            "done": self.done,
            "evicted": self.evicted,
            "idle_seconds": round(self.idle_seconds(), 3),
            "trace_id": (
                self.tel.ctx.trace_id if self.tel.enabled else None
            ),
        }
