"""Standing-query subscription sources for the join service.

A :class:`LiveSource` is the subscription-shaped sibling of
:class:`~repro.service.session.QuerySource`: instead of a rebuildable
row stream it wraps a registered :class:`~repro.live.StandingJoin`
whose delta outbox the scheduler pages into the session buffer
(``GET /next`` returns delta events, not rows).  A subscription never
exhausts -- an empty page just means no repairs are pending.

Suspension works through the same pickled-cursor protocol as query
sessions: :meth:`LiveSource.save` wraps the standing cursor
(``repro-live-cursor``) in a source envelope, :meth:`LiveSource.load`
re-registers it against the database's trees, and the cursor's tree
fingerprints (which include the mutation counters) guarantee a spooled
subscription can only resume against the exact tree versions it was
maintaining -- the service resumes evicted subscriptions *before*
applying updates for exactly this reason.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.errors import CursorError
from repro.live.delta import Delta
from repro.live.standing import StandingJoin
from repro.query.parser import parse

#: Envelope marker for saved live sources.
LIVE_SOURCE_FORMAT = "repro-live-session"
LIVE_SOURCE_VERSION = 1

__all__ = [
    "LIVE_SOURCE_FORMAT",
    "LIVE_SOURCE_VERSION",
    "LiveSource",
]


class LiveSource:
    """A standing ``WATCH`` subscription bound to a database.

    Mirrors the :class:`~repro.service.session.QuerySource` surface
    the scheduler and sessions expect (``sql`` / ``strategy`` /
    ``join_kwargs`` / ``plan`` / ``open`` / ``release`` / ``save`` /
    ``load``), plus the live-only :meth:`poll`, :meth:`notify_insert`
    and :meth:`notify_delete`.
    """

    def __init__(
        self,
        db: Any,
        sql: str,
        join_kwargs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.db = db
        self.sql = sql
        self.strategy = "live"
        self.join_kwargs = dict(join_kwargs or {})
        self._standing: Optional[StandingJoin] = None
        self._query: Any = None

    @property
    def plan(self) -> None:
        """Subscriptions have no pull plan; always None."""
        return None

    @property
    def query(self):
        """The parsed WATCH query (relations drive update routing).

        Parsed once and cached: the update fan-out consults every
        live session's relations on every ``POST /update``, which
        must not reparse per subscription per update.
        """
        if self._query is None:
            self._query = parse(self.sql)
        return self._query

    def open(self) -> StandingJoin:
        """Register the standing join (once) and return it."""
        if self._standing is None:
            self._standing = self.db.watch(self.sql, **self.join_kwargs)
        return self._standing

    @property
    def standing(self) -> StandingJoin:
        """The registered standing join (registering on first use)."""
        return self.open()

    def poll(self, limit: Optional[int] = None) -> List[Delta]:
        """Drain up to ``limit`` pending deltas from the outbox."""
        return self.open().poll(limit)

    def pending(self) -> int:
        return self.open().pending()

    def notify_insert(
        self, oid: int, obj: Any, side: int
    ) -> List[Delta]:
        """Repair after an insert already applied to the tree."""
        return self.open().observe_insert(oid, obj, side=side)

    def notify_delete(self, oid: int, side: int) -> List[Delta]:
        """Repair after a delete already applied to the tree."""
        return self.open().observe_delete(oid, side=side)

    def release(self) -> None:
        """Drop the in-memory standing join (after :meth:`save`)."""
        self._standing = None

    def save(self) -> Dict[str, Any]:
        """Snapshot the subscription as a picklable cursor state."""
        return {
            "format": LIVE_SOURCE_FORMAT,
            "version": LIVE_SOURCE_VERSION,
            "sql": self.sql,
            "standing": self.open().save(),
        }

    def load(self, state: Dict[str, Any]) -> None:
        """Restore a :meth:`save` snapshot in place.

        The standing cursor's tree fingerprints (including the
        mutation counters) are checked by
        :meth:`~repro.live.StandingJoin.load`: a subscription spooled
        before an unobserved tree mutation refuses to resume.
        """
        if (
            not isinstance(state, dict)
            or state.get("format") != LIVE_SOURCE_FORMAT
        ):
            raise CursorError("not a live-source cursor")
        if state.get("version") != LIVE_SOURCE_VERSION:
            raise CursorError(
                f"unsupported live cursor version "
                f"{state.get('version')!r} (this build reads "
                f"{LIVE_SOURCE_VERSION})"
            )
        self.sql = state["sql"]
        self._query = None
        query = self.query
        tree1 = self.db.relation(query.relation1)
        tree2 = self.db.relation(query.relation2)
        self._standing = StandingJoin.load(
            state["standing"], tree1, tree2,
            counters=self.join_kwargs.get(
                "counters", self.db.counters
            ),
            observer=self.join_kwargs.get("observer"),
        )
