"""A stdlib-only asyncio HTTP front end for the join scheduler.

The server speaks a deliberately small JSON API (documented with curl
examples in ``docs/SERVICE.md``):

- ``POST /query`` with ``{"sql": ..., "strategy": ...}`` admits a
  session and returns its id; a ``WATCH ...`` statement admits a
  *standing* subscription instead, whose ``/next`` pages are
  ``+pair``/``-pair`` repair deltas (see ``docs/LIVE.md``);
- ``POST /update`` with ``{"relation", "op", "oid", "point"}``
  applies one insert/delete to a relation and queues repair deltas on
  every subscription watching it;
- ``GET /next?session=ID&k=N`` runs fair scheduler rounds until the
  session has ``N`` rows (or its stream ends) and returns them as JSON
  -- interleaving with every other pending session's quanta;
- ``GET /status`` and ``GET /metrics`` expose the scheduler snapshot
  and a Prometheus-style rendering of the service metrics;
- ``GET /progress`` reports each session's certified progress (or one
  session's with ``?session=ID``);
- ``GET /debug/sessions`` and ``GET /debug/trace?session=ID`` expose
  live per-session diagnostics and the request's stitched span tree
  (``&format=chrome`` for a Perfetto-loadable trace);
- ``DELETE /session?session=ID`` cancels a session.

Requests may carry a W3C ``traceparent`` header; ``POST /query``
adopts it as the session's trace identity (minting one otherwise) and
returns the trace id, so one client trace follows the query through
every quantum, suspend, and resume.  With ``log_json=True`` every
request is also logged as one structured JSON line carrying the trace
id.

A background task periodically evicts idle sessions to the cursor
spool; the next ``/next`` transparently resumes them.  Everything is
``asyncio`` + ``json`` + manual HTTP/1.1 parsing -- no dependencies
beyond the standard library, one request per connection.
"""

from __future__ import annotations

import asyncio
import json
import sys
import time
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.errors import LiveError, QueryError, ReproError, ServiceError
from repro.geometry.point import Point
from repro.query.parser import parse
from repro.query.physical import STRATEGIES
from repro.rtree.base import RTreeBase
from repro.service.cursor import CursorStore
from repro.service.live import LiveSource
from repro.service.scheduler import JoinScheduler
from repro.service.session import QuerySource
from repro.util.counters import CounterRegistry
from repro.util.obs import prometheus_text
from repro.util.telemetry import TraceContext

#: Strategies a client may request; anything else is a 400.
ALLOWED_STRATEGIES = STRATEGIES

#: Hard cap on one ``/next`` page (the client loops for more).
MAX_PAGE = 4096


def row_to_json(row: Any) -> Dict[str, Any]:
    """A :class:`~repro.query.physical.Row` -- or a standing join's
    :class:`~repro.live.Delta` event -- as JSON-friendly data."""
    def geom(value: Any) -> Any:
        coords = getattr(value, "coords", None)
        return list(coords) if coords is not None else None

    op = getattr(row, "op", None)
    if op is not None:
        # A WATCH session's delta event: +pair / -pair with the
        # subscription-wide sequence number.
        return {
            "op": op,
            "seq": row.seq,
            "d": row.distance,
            "oid1": row.oid1,
            "geom1": geom(row.obj1),
            "oid2": row.oid2,
            "geom2": geom(row.obj2),
        }
    return {
        "d": row.d,
        "oid1": row.oid1,
        "geom1": geom(row.geom1),
        "oid2": row.oid2,
        "geom2": geom(row.geom2),
    }


class JoinService:
    """The HTTP-facing service: a database plus a quantum scheduler.

    Parameters
    ----------
    db:
        The :class:`~repro.query.executor.Database` queries run over.
    scheduler:
        Pre-configured scheduler (one is built when omitted).
    spool_dir:
        Where idle sessions are evicted to (``None`` disables
        eviction); ignored when ``scheduler`` is supplied.
    idle_evict_seconds / evict_interval:
        Idle threshold and sweep period of the background evictor.
    telemetry:
        Request-scoped tracing and progress estimation (on by default
        for the HTTP service; the embedded scheduler default is off).
        Ignored when a prebuilt ``scheduler`` is supplied.
    latency_budget_seconds / dump_dir:
        Slow-quantum budget and dump directory, forwarded to the
        scheduler (see :class:`~repro.service.scheduler
        .JoinScheduler`); ignored when ``scheduler`` is supplied.
    log_json:
        Log every request as one structured JSON line (method, path,
        status, duration, session, trace id) on stdout.
    """

    def __init__(
        self,
        db: Any,
        scheduler: Optional[JoinScheduler] = None,
        spool_dir: Optional[str] = None,
        counters: Optional[CounterRegistry] = None,
        idle_evict_seconds: float = 30.0,
        evict_interval: float = 5.0,
        quantum_pairs: int = 64,
        quantum_seconds: float = 0.05,
        max_sessions: int = 256,
        telemetry: bool = True,
        latency_budget_seconds: Optional[float] = None,
        dump_dir: Optional[str] = None,
        log_json: bool = False,
        log_stream: Any = None,
    ) -> None:
        self.db = db
        if scheduler is None:
            store = CursorStore(spool_dir, counters=counters) \
                if spool_dir is not None else None
            scheduler = JoinScheduler(
                quantum_pairs=quantum_pairs,
                quantum_seconds=quantum_seconds,
                max_sessions=max_sessions,
                counters=counters,
                cursor_store=store,
                telemetry=telemetry,
                latency_budget_seconds=latency_budget_seconds,
                dump_dir=dump_dir,
            )
        self.scheduler = scheduler
        self.idle_evict_seconds = idle_evict_seconds
        self.evict_interval = evict_interval
        self.log_json = log_json
        self._log_stream = log_stream if log_stream is not None \
            else sys.stdout
        self._server: Optional[asyncio.AbstractServer] = None
        self._evictor: Optional[asyncio.Task] = None

    # ------------------------------------------------------------------
    # request handlers (route → JSON)
    # ------------------------------------------------------------------

    def _post_query(
        self,
        body: Dict[str, Any],
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Any]:
        sql = body.get("sql")
        if not isinstance(sql, str) or not sql.strip():
            return 400, {"error": "body must carry a 'sql' string"}
        strategy = body.get("strategy", "auto")
        if strategy not in ALLOWED_STRATEGIES:
            return 400, {
                "error": f"unknown strategy {strategy!r}",
                "allowed": list(ALLOWED_STRATEGIES),
            }
        # Planning is lazy (the first quantum builds it), but a syntax
        # error should be a 400 at admission, not a late surprise.
        query = parse(sql)
        # A malformed traceparent is ignored (a fresh trace is minted
        # at admission), per the W3C propagation contract.
        trace_ctx = TraceContext.from_traceparent(
            (headers or {}).get("traceparent")
        )
        if query.watch:
            # A WATCH registration: the session is a standing
            # subscription whose /next pages are repair deltas.  The
            # scheduler's registry takes the live_* counters so they
            # surface on /metrics next to the service_* family.
            source: Any = LiveSource(
                self.db, sql,
                join_kwargs={"counters": self.scheduler.counters},
            )
        else:
            source = QuerySource(self.db, sql, strategy=strategy)
        session = self.scheduler.admit(source, trace_ctx=trace_ctx)
        if query.watch:
            # Register eagerly (after admit, so the telemetry observer
            # injected by the scheduler reaches the standing join): a
            # bad registration surfaces now, and the bootstrap ADD
            # deltas are already queued for the first /next.
            try:
                source.open()
            except ReproError:
                self.scheduler.remove(session.id)
                raise
        payload = {"session": session.id, "status": session.stats()}
        if query.watch:
            payload["watch"] = True
        if session.tel.enabled:
            payload["trace_id"] = session.tel.ctx.trace_id
            payload["traceparent"] = session.tel.ctx.to_traceparent()
        return 200, payload

    async def _get_next(self, params: Dict[str, Any]) -> Tuple[int, Any]:
        session_id = params.get("session")
        if not session_id:
            return 400, {"error": "missing 'session' parameter"}
        try:
            k = int(params.get("k", "16"))
        except ValueError:
            return 400, {"error": "'k' must be an integer"}
        if k < 1 or k > MAX_PAGE:
            return 400, {"error": f"'k' must be in [1, {MAX_PAGE}]"}
        session = self.scheduler.request(session_id, k)
        while session.pending:
            produced = self.scheduler.run_round()
            # Yield between rounds so concurrent /next handlers (and
            # the evictor) interleave; the round itself is atomic.
            await asyncio.sleep(0)
            if produced == 0 and session.pending:
                break
        rows, exhausted = self.scheduler.take(session_id, k)
        if hasattr(session.source, "poll"):
            # A subscription page is best-effort: leftover demand must
            # not accumulate (it would pin the session as pending
            # forever and block idle eviction).
            session.demand = 0
        payload = {
            "session": session_id,
            "rows": [row_to_json(r) for r in rows],
            "done": exhausted,
            "emitted_total": session.emitted_total,
            "quanta": session.quanta,
        }
        if exhausted:
            # A finished STOP AFTER k stream frees its slot at once.
            self.scheduler.remove(session_id)
        return 200, payload

    def _post_update(self, body: Dict[str, Any]) -> Tuple[int, Any]:
        """Apply one insert/delete to a relation and repair watchers.

        Body: ``{"relation": name, "op": "insert"|"delete",
        "oid": int, "point": [coords]}`` -- ``point`` locates the
        object (its stored rect) and is required for both ops.  The
        tree mutation is applied exactly once; every standing WATCH
        session over the relation then observes it and queues its
        repair deltas for the next ``GET /next``.  Evicted
        subscriptions are resumed first so their cursors' tree
        fingerprints stay in sync with the mutation counter.

        An update is validated *before* the tree mutates, so a
        rejected update leaves the tree and every subscription
        untouched: inserting an oid already present in the relation is
        a 409 (``RTreeBase.insert`` would happily store a duplicate,
        which no oid-addressed watcher could maintain), and deleting
        an oid/point pair the tree does not hold is a 404.  Should a
        watcher still fail to observe an applied mutation, its
        subscription is permanently desynced and is removed rather
        than left silently stale (reported under ``"invalidated"``).
        """
        relation = body.get("relation")
        if not isinstance(relation, str) or not relation:
            return 400, {"error": "body must carry a 'relation' string"}
        op = body.get("op")
        if op not in ("insert", "delete"):
            return 400, {"error": "'op' must be 'insert' or 'delete'"}
        oid = body.get("oid")
        if not isinstance(oid, int) or isinstance(oid, bool):
            return 400, {"error": "'oid' must be an integer"}
        coords = body.get("point")
        if (
            not isinstance(coords, (list, tuple))
            or not coords
            or not all(isinstance(c, (int, float)) for c in coords)
        ):
            return 400, {"error": "'point' must be a coordinate list"}
        tree = self.db.relation(relation)
        obj = Point(coords)
        rect = RTreeBase._rect_of(obj)

        # Watching subscriptions, with the side(s) on which they see
        # this relation (a self-join-like WATCH may see both).
        watchers = []
        for session in self.scheduler.sessions():
            source = session.source
            if not hasattr(source, "poll"):
                continue
            query = source.query
            sides = [
                side for side, rel in
                ((1, query.relation1), (2, query.relation2))
                if rel == relation
            ]
            if sides:
                watchers.append((session, sides))
        # Resume evicted watchers before touching the tree: a spooled
        # live cursor pins the tree's mutation counter and would
        # refuse to load after an unobserved update.
        for session, __ in watchers:
            if session.evicted:
                self.scheduler.resume(session)

        if op == "insert":
            # Validate oid freshness BEFORE mutating: the tree itself
            # accepts duplicate oids, but a duplicate would desync
            # every oid-addressed watcher mid-fan-out.  Any watcher's
            # object index mirrors the relation exactly; without
            # watchers, the tree is the only source.
            if watchers:
                witness, witness_sides = watchers[0]
                present = witness.source.standing.has_object(
                    oid, witness_sides[0]
                )
            else:
                present = any(e.oid == oid for e in tree.items())
            if present:
                return 409, {
                    "error": f"oid {oid} already exists in relation "
                             f"{relation!r}"
                }
            tree.insert(obj=obj, rect=rect, oid=oid)
        else:
            if not tree.delete(oid, rect):
                return 404, {
                    "error": f"relation {relation!r} holds no object "
                             f"{oid} at the given point"
                }
        deltas = 0
        invalidated = []
        for session, sides in watchers:
            try:
                for side in sides:
                    if op == "insert":
                        emitted = session.source.notify_insert(
                            oid, obj, side
                        )
                    else:
                        emitted = session.source.notify_delete(
                            oid, side
                        )
                    deltas += len(emitted)
            except ReproError as exc:
                # The mutation is applied but this watcher could not
                # observe it: its standing store can never be repaired
                # back into sync, so drop the subscription instead of
                # serving silently stale results.
                self.scheduler.remove(session.id)
                invalidated.append(
                    {"session": session.id, "error": str(exc)}
                )
                continue
            session.touch()
        payload = {
            "relation": relation,
            "op": op,
            "oid": oid,
            "watchers": len(watchers),
            "deltas": deltas,
        }
        if invalidated:
            payload["invalidated"] = invalidated
        return 200, payload

    def _get_status(self) -> Tuple[int, Any]:
        return 200, self.scheduler.status()

    def _delete_session(self, params: Dict[str, Any]) -> Tuple[int, Any]:
        session_id = params.get("session")
        if not session_id:
            return 400, {"error": "missing 'session' parameter"}
        self.scheduler.remove(session_id)
        return 200, {"deleted": session_id}

    def _get_metrics(self) -> Tuple[int, str]:
        return 200, prometheus_text(self.scheduler.metrics())

    def _get_progress(self, params: Dict[str, Any]) -> Tuple[int, Any]:
        session_id = params.get("session")
        if session_id:
            session = self.scheduler.session(session_id)
            return 200, {
                "session": session_id,
                "progress": session.progress_report(),
            }
        return 200, {"sessions": self.scheduler.progress()}

    def _get_debug_sessions(self) -> Tuple[int, Any]:
        return 200, {"sessions": self.scheduler.debug_sessions()}

    def _get_debug_trace(
        self, params: Dict[str, Any]
    ) -> Tuple[int, Any]:
        session_id = params.get("session")
        if not session_id:
            return 400, {"error": "missing 'session' parameter"}
        fmt = params.get("format", "json")
        return 200, self.scheduler.trace_dump(session_id, fmt=fmt)

    async def _dispatch(
        self,
        method: str,
        path: str,
        body: bytes,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, Any, str]:
        parts = urlsplit(path)
        params = {
            key: values[-1]
            for key, values in parse_qs(parts.query).items()
        }
        route = (method, parts.path)
        try:
            if route == ("POST", "/query"):
                try:
                    parsed = json.loads(body.decode("utf-8") or "{}")
                except ValueError:
                    return 400, {"error": "body is not valid JSON"}, \
                        "application/json"
                if not isinstance(parsed, dict):
                    return 400, {"error": "body must be a JSON object"}, \
                        "application/json"
                status, payload = self._post_query(parsed, headers)
            elif route == ("POST", "/update"):
                try:
                    parsed = json.loads(body.decode("utf-8") or "{}")
                except ValueError:
                    return 400, {"error": "body is not valid JSON"}, \
                        "application/json"
                if not isinstance(parsed, dict):
                    return 400, {"error": "body must be a JSON object"}, \
                        "application/json"
                status, payload = self._post_update(parsed)
            elif route == ("GET", "/next"):
                status, payload = await self._get_next(params)
            elif route == ("GET", "/status"):
                status, payload = self._get_status()
            elif route == ("GET", "/metrics"):
                status, text = self._get_metrics()
                return status, text, "text/plain; version=0.0.4"
            elif route == ("GET", "/progress"):
                status, payload = self._get_progress(params)
            elif route == ("GET", "/debug/sessions"):
                status, payload = self._get_debug_sessions()
            elif route == ("GET", "/debug/trace"):
                status, payload = self._get_debug_trace(params)
            elif route == ("DELETE", "/session"):
                status, payload = self._delete_session(params)
            else:
                status, payload = 404, {
                    "error": f"no route {method} {parts.path}"
                }
        except ServiceError as exc:
            message = str(exc)
            status = 409 if "full" in message else 404
            payload = {"error": message}
        except (LiveError, QueryError) as exc:
            status, payload = 400, {"error": str(exc)}
        except ReproError as exc:
            status, payload = 500, {"error": str(exc)}
        return status, payload, "application/json"

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------

    def _log_request(
        self,
        method: str,
        path: str,
        status: int,
        payload: Any,
        headers: Dict[str, str],
        duration: float,
    ) -> None:
        """One structured JSON log line per request.

        The trace id comes from the response payload when the route
        produced one (``POST /query``) and falls back to the session's
        recorded trace otherwise, so every line about a traced query
        carries the same id the client saw.
        """
        parts = urlsplit(path)
        params = {
            key: values[-1]
            for key, values in parse_qs(parts.query).items()
        }
        session_id = None
        trace_id = None
        if isinstance(payload, dict):
            session_id = payload.get("session")
            trace_id = payload.get("trace_id")
        if session_id is None:
            session_id = params.get("session")
        if trace_id is None and session_id is not None:
            try:
                session = self.scheduler.session(session_id)
            except ReproError:
                session = None
            if session is not None and session.tel.enabled:
                trace_id = session.tel.ctx.trace_id
        if trace_id is None:
            header = TraceContext.from_traceparent(
                headers.get("traceparent")
            )
            trace_id = header.trace_id if header is not None else None
        line = json.dumps({
            "ts": round(time.time(), 6),
            "method": method,
            "path": parts.path,
            "status": status,
            "dur_ms": round(duration * 1000.0, 3),
            "session": session_id,
            "trace_id": trace_id,
        })
        try:
            self._log_stream.write(line + "\n")
            self._log_stream.flush()
        except (OSError, ValueError):
            pass

    async def _handle(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            request_line = await reader.readline()
            pieces = request_line.decode("latin-1").split()
            if len(pieces) < 2:
                return
            method, path = pieces[0].upper(), pieces[1]
            headers: Dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, __, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            try:
                content_length = int(headers.get("content-length", "0"))
            except ValueError:
                content_length = 0
            body = await reader.readexactly(content_length) \
                if content_length else b""
            started = time.perf_counter()
            status, payload, ctype = await self._dispatch(
                method, path, body, headers
            )
            if self.log_json:
                self._log_request(
                    method, path, status, payload, headers,
                    time.perf_counter() - started,
                )
            if isinstance(payload, str):
                data = payload.encode("utf-8")
            else:
                data = json.dumps(payload).encode("utf-8")
            reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                      409: "Conflict", 500: "Internal Server Error"}
            head = (
                f"HTTP/1.1 {status} {reason.get(status, 'OK')}\r\n"
                f"Content-Type: {ctype}\r\n"
                f"Content-Length: {len(data)}\r\n"
                "Connection: close\r\n"
                "\r\n"
            )
            writer.write(head.encode("latin-1") + data)
            await writer.drain()
        except (asyncio.IncompleteReadError, ConnectionError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _evict_loop(self) -> None:
        while True:
            await asyncio.sleep(self.evict_interval)
            self.scheduler.evict_idle(self.idle_evict_seconds)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self, host: str = "127.0.0.1", port: int = 8080):
        """Bind and start serving; returns the asyncio server."""
        self._server = await asyncio.start_server(
            self._handle, host, port
        )
        if self.scheduler.store is not None:
            self._evictor = asyncio.get_running_loop().create_task(
                self._evict_loop()
            )
        return self._server

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0`` in tests)."""
        if self._server is None:
            raise ServiceError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Stop the evictor and close the listening socket."""
        if self._evictor is not None:
            self._evictor.cancel()
            try:
                await self._evictor
            except asyncio.CancelledError:
                pass
            self._evictor = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(
        self, host: str = "127.0.0.1", port: int = 8080
    ) -> None:
        """Start and block until cancelled (the ``repro serve`` path)."""
        server = await self.start(host, port)
        async with server:
            await server.serve_forever()


def run(
    db: Any,
    host: str = "127.0.0.1",
    port: int = 8080,
    **service_kwargs: Any,
) -> None:
    """Blocking entry point: serve ``db`` until interrupted."""
    service = JoinService(db, **service_kwargs)
    try:
        asyncio.run(service.serve_forever(host, port))
    except KeyboardInterrupt:
        pass


__all__ = ["ALLOWED_STRATEGIES", "JoinService", "row_to_json", "run"]
