"""A small synchronous client for the join service HTTP API.

Used by the tests, the CI smoke job, and ``examples/service_smoke.py``
so they all exercise the server the same way a real client would --
over a socket, one page at a time.  Stdlib only (``http.client``).
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Dict, Iterator, List, Optional

from repro.errors import ServiceError


class ServiceClient:
    """Talk to a running :class:`~repro.service.server.JoinService`.

    Parameters
    ----------
    host / port:
        Where the server listens.
    timeout:
        Per-request socket timeout in seconds.
    """

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8080,
        timeout: float = 30.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Any:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            payload = json.dumps(body).encode("utf-8") \
                if body is not None else None
            send_headers = dict(headers or {})
            if payload is not None:
                send_headers.setdefault(
                    "Content-Type", "application/json"
                )
            conn.request(
                method, path, body=payload, headers=send_headers
            )
            response = conn.getresponse()
            raw = response.read()
            content_type = response.getheader("Content-Type", "")
            if content_type.startswith("application/json"):
                decoded: Any = json.loads(raw.decode("utf-8"))
            else:
                decoded = raw.decode("utf-8")
            if response.status >= 400:
                detail = decoded.get("error", decoded) \
                    if isinstance(decoded, dict) else decoded
                raise ServiceError(
                    f"{method} {path} -> {response.status}: {detail}"
                )
            return decoded
        finally:
            conn.close()

    # ------------------------------------------------------------------
    # API surface
    # ------------------------------------------------------------------

    def query(
        self,
        sql: str,
        strategy: str = "auto",
        traceparent: Optional[str] = None,
    ) -> str:
        """Admit a query; returns the new session id.

        ``traceparent`` (a W3C trace header value) makes the server
        join an existing client trace instead of minting one.
        """
        headers = {"traceparent": traceparent} \
            if traceparent is not None else None
        reply = self._request(
            "POST", "/query", {"sql": sql, "strategy": strategy},
            headers=headers,
        )
        return reply["session"]

    def admit(
        self,
        sql: str,
        strategy: str = "auto",
        traceparent: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Like :meth:`query` but returns the full admission payload
        (session id, status snapshot, and trace identity)."""
        headers = {"traceparent": traceparent} \
            if traceparent is not None else None
        return self._request(
            "POST", "/query", {"sql": sql, "strategy": strategy},
            headers=headers,
        )

    def next(self, session_id: str, k: int = 16) -> Dict[str, Any]:
        """Fetch the next page: ``{"rows", "done", ...}``."""
        return self._request(
            "GET", f"/next?session={session_id}&k={k}"
        )

    def pages(
        self, sql: str, k: int = 16, strategy: str = "auto"
    ) -> Iterator[List[Dict[str, Any]]]:
        """Run ``sql`` and yield pages of rows until the stream ends."""
        session_id = self.query(sql, strategy=strategy)
        while True:
            reply = self.next(session_id, k=k)
            if reply["rows"]:
                yield reply["rows"]
            if reply["done"]:
                return

    def rows(
        self, sql: str, k: int = 16, strategy: str = "auto"
    ) -> List[Dict[str, Any]]:
        """All rows of ``sql``, fetched page by page."""
        out: List[Dict[str, Any]] = []
        for page in self.pages(sql, k=k, strategy=strategy):
            out.extend(page)
        return out

    def watch(self, sql: str) -> str:
        """Register a standing ``WATCH`` subscription; returns its
        session id.  Page its delta stream with :meth:`deltas`."""
        reply = self._request("POST", "/query", {"sql": sql})
        return reply["session"]

    def deltas(self, session_id: str, k: int = 16) -> List[Dict[str, Any]]:
        """The next page of a subscription's pending repair deltas
        (possibly empty; a subscription never reports ``done``)."""
        return self.next(session_id, k=k)["rows"]

    def update(
        self,
        relation: str,
        op: str,
        oid: int,
        point: List[float],
    ) -> Dict[str, Any]:
        """Apply one insert/delete to a relation on the server.

        Returns the update receipt (watchers notified, deltas
        queued).  ``point`` locates the object for both ops.
        """
        return self._request("POST", "/update", {
            "relation": relation, "op": op, "oid": oid,
            "point": list(point),
        })

    def insert(
        self, relation: str, oid: int, point: List[float]
    ) -> Dict[str, Any]:
        """Insert ``oid`` at ``point`` into ``relation``."""
        return self.update(relation, "insert", oid, point)

    def remove(
        self, relation: str, oid: int, point: List[float]
    ) -> Dict[str, Any]:
        """Delete ``oid`` (stored at ``point``) from ``relation``."""
        return self.update(relation, "delete", oid, point)

    def status(self) -> Dict[str, Any]:
        """The scheduler's ``/status`` snapshot."""
        return self._request("GET", "/status")

    def metrics_text(self) -> str:
        """The Prometheus-style ``/metrics`` exposition."""
        return self._request("GET", "/metrics")

    def progress(
        self, session_id: Optional[str] = None
    ) -> Dict[str, Any]:
        """Certified progress for one session (or all of them)."""
        path = f"/progress?session={session_id}" \
            if session_id is not None else "/progress"
        return self._request("GET", path)

    def debug_sessions(self) -> List[Dict[str, Any]]:
        """The live ``/debug/sessions`` diagnostics."""
        return self._request("GET", "/debug/sessions")["sessions"]

    def debug_trace(
        self, session_id: str, fmt: str = "json"
    ) -> Dict[str, Any]:
        """A session's stitched span tree (or Chrome trace dict)."""
        return self._request(
            "GET", f"/debug/trace?session={session_id}&format={fmt}"
        )

    def delete(self, session_id: str) -> None:
        """Cancel a session."""
        self._request("DELETE", f"/session?session={session_id}")


__all__ = ["ServiceClient"]
