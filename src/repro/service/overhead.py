"""Suspend/resume overhead harness for the ``service`` bench family.

:func:`resumed_join` produces exactly the same result stream as an
uninterrupted join, but suspends itself every ``every`` results: it
saves the cursor, optionally round-trips it through pickled bytes
(the realistic eviction path), rebuilds the join with
:meth:`~repro.core.distance_join.IncrementalDistanceJoin.load`, and
continues.  Benchmarking it against the plain iterator prices the
quantum scheduler's per-suspend cost in isolation.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, Type

from repro.core.distance_join import IncrementalDistanceJoin
from repro.core.spec import JoinSpec
from repro.service import cursor as service_cursor
from repro.util.counters import CounterRegistry
from repro.util.obs import Observer
from repro.util.validation import require_positive


def resumed_join(
    tree1: Any,
    tree2: Any,
    spec: Optional[JoinSpec] = None,
    *,
    operator_cls: Type[IncrementalDistanceJoin] = IncrementalDistanceJoin,
    counters: Optional[CounterRegistry] = None,
    observer: Optional[Observer] = None,
    every: int = 64,
    through_bytes: bool = True,
    **knobs: Any,
) -> Iterator[Any]:
    """Iterate a join, suspending and resuming every ``every`` results.

    Parameters
    ----------
    operator_cls:
        The incremental operator to run (join, semi-join, ...); must
        support ``save()``/``load()``.
    every:
        Results produced between consecutive suspend/resume cycles.
    through_bytes:
        When True each cursor also round-trips through the pickled
        service-cursor envelope, as an evicted session's would.

    Yields exactly what the uninterrupted operator would, with the
    shared ``counters`` registry accumulating continuous totals.
    """
    require_positive(every, "every")
    join = operator_cls(
        tree1, tree2, spec, counters=counters, observer=observer,
        **knobs,
    )
    while True:
        produced = 0
        exhausted = False
        for result in join:
            yield result
            produced += 1
            if produced >= every:
                break
        else:
            exhausted = True
        if exhausted:
            return
        state = join.save()
        if through_bytes:
            state = service_cursor.loads(service_cursor.dumps(state))
        join = operator_cls.load(
            state, tree1, tree2, counters=counters, observer=observer,
        )


__all__ = ["resumed_join"]
