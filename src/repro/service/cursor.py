"""Cursor blobs: the service's serialized suspended-execution format.

A cursor blob is a pickled envelope ``{"format", "version", "state"}``
around whatever picklable state a component produced --
:meth:`repro.core.distance_join.IncrementalDistanceJoin.save` for a
bare join, :meth:`repro.query.physical.PhysicalNode.save` for a whole
plan, or :meth:`repro.service.session.QuerySource.save` for a service
session.  The envelope is what gets versioned here; the inner states
carry their own format markers where they need them.

:class:`CursorStore` spools blobs to files for idle-session eviction,
accounting the traffic in the same simulated-page currency as the rest
of the storage layer (``cursor_spool_writes`` / ``cursor_spool_reads``
pages of the configured page size).
"""

from __future__ import annotations

import os
import pickle
from typing import Any, Iterator, Optional

from repro.errors import CursorError
from repro.storage.pager import DEFAULT_PAGE_SIZE
from repro.util.counters import CounterRegistry

#: Identifier and version of the service cursor envelope.
CURSOR_FORMAT = "repro-service-cursor"
CURSOR_VERSION = 1


def dumps(state: Any) -> bytes:
    """Wrap ``state`` in the versioned envelope and pickle it."""
    try:
        return pickle.dumps(
            {
                "format": CURSOR_FORMAT,
                "version": CURSOR_VERSION,
                "state": state,
            },
            pickle.HIGHEST_PROTOCOL,
        )
    except Exception as exc:
        raise CursorError(
            f"cursor state is not serializable: {exc}"
        ) from exc


def loads(blob: bytes) -> Any:
    """Unpickle a :func:`dumps` blob, checking the envelope."""
    try:
        envelope = pickle.loads(blob)
    except Exception as exc:
        raise CursorError(f"corrupt cursor blob: {exc}") from exc
    if (
        not isinstance(envelope, dict)
        or envelope.get("format") != CURSOR_FORMAT
    ):
        raise CursorError("not a service cursor blob")
    if envelope.get("version") != CURSOR_VERSION:
        raise CursorError(
            f"unsupported cursor version {envelope.get('version')!r} "
            f"(this build reads version {CURSOR_VERSION})"
        )
    return envelope["state"]


class CursorStore:
    """File-backed spool for evicted session cursors.

    Parameters
    ----------
    spool_dir:
        Directory the blobs are written to (created on first use).
    counters:
        Registry charged with ``cursor_spool_writes`` /
        ``cursor_spool_reads`` in simulated pages of ``page_size``
        bytes, plus ``cursor_spool_bytes`` (gauge peak = largest blob).
    page_size:
        Page size used for the simulated-I/O accounting only; blobs
        are stored as ordinary files.
    """

    def __init__(
        self,
        spool_dir: str,
        counters: Optional[CounterRegistry] = None,
        page_size: int = DEFAULT_PAGE_SIZE,
    ) -> None:
        self.spool_dir = spool_dir
        self.counters = counters if counters is not None else CounterRegistry()
        self.page_size = page_size

    def _path(self, session_id: str) -> str:
        safe = "".join(
            c if c.isalnum() or c in "-_" else "_" for c in session_id
        )
        return os.path.join(self.spool_dir, f"session-{safe}.cursor")

    def _pages(self, nbytes: int) -> int:
        return max(1, -(-nbytes // self.page_size))

    def save(self, session_id: str, state: Any) -> str:
        """Spool ``state`` for ``session_id``; returns the file path."""
        blob = dumps(state)
        os.makedirs(self.spool_dir, exist_ok=True)
        path = self._path(session_id)
        with open(path, "wb") as handle:
            handle.write(blob)
        self.counters.add("cursor_spool_writes", self._pages(len(blob)))
        self.counters.counter("cursor_spool_bytes").observe(len(blob))
        return path

    def load(self, session_id: str) -> Any:
        """Read back the spooled cursor for ``session_id``."""
        path = self._path(session_id)
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except FileNotFoundError:
            raise CursorError(
                f"no spooled cursor for session {session_id!r}"
            ) from None
        self.counters.add("cursor_spool_reads", self._pages(len(blob)))
        return loads(blob)

    def delete(self, session_id: str) -> bool:
        """Drop the spooled cursor; True if one existed."""
        try:
            os.remove(self._path(session_id))
            return True
        except FileNotFoundError:
            return False

    def exists(self, session_id: str) -> bool:
        """True when a cursor is spooled for ``session_id``."""
        return os.path.exists(self._path(session_id))

    def session_ids(self) -> Iterator[str]:
        """Session ids with a spooled cursor (by file name)."""
        try:
            names = os.listdir(self.spool_dir)
        except FileNotFoundError:
            return
        for name in sorted(names):
            if name.startswith("session-") and name.endswith(".cursor"):
                yield name[len("session-"):-len(".cursor")]
