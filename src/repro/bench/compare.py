"""``python -m repro.bench.compare`` -- the perf regression gate.

Diffs the **newest** entry of a ``BENCH_<tier>.json`` trajectory (the
run a PR just produced) against the **committed baseline history**
(every earlier entry) with noise-aware thresholds, and exits nonzero
on regression so CI can gate on it.

Two gate classes, matching what the metrics physically are:

hard gates (deterministic work counters)
    ``dist_calcs``, ``node_io``, queue peaks, and the produced pair
    count of cases marked ``deterministic`` are exact functions of
    code + seed + scale -- identical on every machine.  The newest
    value may not exceed the baseline *median* by more than
    ``--hard-tol`` (default 1%; the slack only forgives float-ordering
    jitter, not algorithmic growth).  Counter *drops* never fail: an
    optimisation is allowed to look like one.

soft gates (wall time)
    ``seconds`` is noisy, so the threshold is a
    median-absolute-deviation band over the baseline history:
    ``median + max(soft_rel * median, mad_k * 1.4826 * MAD, floor)``.
    With a long committed history the band tightens automatically;
    with a single baseline entry it degrades to the relative
    tolerance.  Cases marked non-deterministic get the same banded
    treatment for their counters.

``--hard-only`` demotes soft regressions to warnings (exit 0), which
is what CI uses: shared runners cannot promise comparable wall time,
but they can promise comparable *work*.
"""

from __future__ import annotations

import argparse
import statistics
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.bench.suite import load_trajectory, trajectory_path

__all__ = [
    "CompareConfig",
    "CompareReport",
    "GateResult",
    "compare_entries",
    "compare_file",
    "main",
]

#: Consistency factor turning a MAD into a robust sigma estimate.
MAD_SIGMA = 1.4826


@dataclass(frozen=True)
class CompareConfig:
    """Gate thresholds (see the module docstring for semantics)."""

    hard_tol: float = 0.01
    soft_rel: float = 0.35
    mad_k: float = 4.0
    soft_floor_s: float = 0.005


@dataclass(frozen=True)
class GateResult:
    """One gated metric of one case."""

    case: str
    metric: str
    kind: str  # "hard" | "soft"
    baseline: float
    limit: float
    value: float
    regressed: bool

    def row(self) -> Dict[str, Any]:
        return {
            "case": self.case,
            "metric": self.metric,
            "gate": self.kind,
            "baseline": self.baseline,
            "limit": round(self.limit, 6),
            "new": self.value,
            "status": "REGRESSED" if self.regressed else "ok",
        }


@dataclass
class CompareReport:
    """Every gate evaluated for one newest-vs-history comparison."""

    gates: List[GateResult] = field(default_factory=list)
    new_cases: List[str] = field(default_factory=list)
    missing_cases: List[str] = field(default_factory=list)

    @property
    def hard_regressions(self) -> List[GateResult]:
        return [g for g in self.gates if g.regressed and g.kind == "hard"]

    @property
    def soft_regressions(self) -> List[GateResult]:
        return [g for g in self.gates if g.regressed and g.kind == "soft"]

    def ok(self, hard_only: bool = False) -> bool:
        if self.hard_regressions:
            return False
        return hard_only or not self.soft_regressions


def _history_values(
    history: Sequence[Mapping[str, Any]], case: str, getter
) -> List[float]:
    values = []
    for entry in history:
        record = entry.get("cases", {}).get(case)
        if record is None:
            continue
        value = getter(record)
        if value is not None:
            values.append(float(value))
    return values


def _soft_limit(values: List[float], config: CompareConfig) -> float:
    median = statistics.median(values)
    mad = statistics.median(abs(v - median) for v in values)
    return median + max(
        config.soft_rel * median,
        config.mad_k * MAD_SIGMA * mad,
        config.soft_floor_s,
    )


def _hard_limit(values: List[float], config: CompareConfig) -> float:
    median = statistics.median(values)
    return median * (1.0 + config.hard_tol)


def compare_entries(
    history: Sequence[Mapping[str, Any]],
    newest: Mapping[str, Any],
    config: Optional[CompareConfig] = None,
) -> CompareReport:
    """Gate ``newest`` against ``history`` (the committed baseline)."""
    config = config if config is not None else CompareConfig()
    report = CompareReport()
    baseline_cases = set()
    for entry in history:
        baseline_cases.update(entry.get("cases", {}))
    new_cases = newest.get("cases", {})
    report.missing_cases = sorted(baseline_cases - set(new_cases))

    for case, record in sorted(new_cases.items()):
        if case not in baseline_cases:
            report.new_cases.append(case)
            continue
        deterministic = bool(record.get("deterministic", True)) and \
            bool(record.get("counters_stable", True))

        # Wall time: always a soft, MAD-banded gate.
        seconds = _history_values(
            history, case, lambda r: r.get("seconds")
        )
        if seconds and record.get("seconds") is not None:
            limit = _soft_limit(seconds, config)
            value = float(record["seconds"])
            report.gates.append(GateResult(
                case=case, metric="seconds", kind="soft",
                baseline=statistics.median(seconds), limit=limit,
                value=value, regressed=value > limit,
            ))

        # Work counters, queue peaks, and produced pairs.
        def gate_group(group: str) -> None:
            names = set(record.get(group, {}))
            for name in sorted(names):
                values = _history_values(
                    history, case, lambda r: r.get(group, {}).get(name)
                )
                if not values:
                    continue
                value = float(record[group][name])
                if deterministic:
                    limit = _hard_limit(values, config)
                    kind = "hard"
                else:
                    limit = _soft_limit(values, config)
                    kind = "soft"
                report.gates.append(GateResult(
                    case=case, metric=f"{group}.{name}", kind=kind,
                    baseline=statistics.median(values), limit=limit,
                    value=value, regressed=value > limit,
                ))

        gate_group("counters")
        gate_group("peaks")

        pairs_history = _history_values(
            history, case, lambda r: r.get("pairs")
        )
        if pairs_history and record.get("pairs") is not None:
            baseline_pairs = statistics.median(pairs_history)
            value = float(record["pairs"])
            # Producing *fewer* pairs than baseline is also a failure:
            # the workload itself changed, which invalidates every
            # other metric of the case.
            report.gates.append(GateResult(
                case=case, metric="pairs", kind="hard",
                baseline=baseline_pairs, limit=baseline_pairs,
                value=value, regressed=value != baseline_pairs,
            ))
    return report


def compare_file(
    path: str,
    config: Optional[CompareConfig] = None,
) -> CompareReport:
    """Compare a trajectory file's newest entry against the rest.

    Raises :class:`ValueError` when the file holds fewer than two
    entries -- there is nothing to gate against yet.
    """
    data = load_trajectory(path)
    entries = data.get("entries", [])
    if len(entries) < 2:
        raise ValueError(
            f"{path} holds {len(entries)} entr{'y' if len(entries) == 1 else 'ies'}; "
            f"a comparison needs a baseline plus a new run (>= 2)"
        )
    return compare_entries(entries[:-1], entries[-1], config)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.compare",
        description="gate the newest BENCH_<tier>.json entry against "
                    "the committed baseline history",
    )
    parser.add_argument(
        "--tier", default="smoke",
        help="tier whose trajectory to check (default: smoke)",
    )
    parser.add_argument(
        "--file", default=None, metavar="FILE",
        help="trajectory file (default: ./BENCH_<tier>.json)",
    )
    parser.add_argument("--hard-tol", type=float, default=0.01)
    parser.add_argument("--soft-rel", type=float, default=0.35)
    parser.add_argument("--mad-k", type=float, default=4.0)
    parser.add_argument(
        "--hard-only", action="store_true",
        help="soft (wall-time) regressions warn instead of failing "
             "(for CI runners with unpredictable machines)",
    )
    parser.add_argument(
        "--verbose", action="store_true",
        help="print every gate, not just regressions",
    )
    args = parser.parse_args(argv)

    path = args.file or trajectory_path(args.tier)
    config = CompareConfig(
        hard_tol=args.hard_tol, soft_rel=args.soft_rel,
        mad_k=args.mad_k,
    )
    try:
        report = compare_file(path, config)
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    from repro.bench.reporting import format_table

    shown = [
        gate for gate in report.gates
        if args.verbose or gate.regressed
    ]
    if shown:
        print(format_table(
            [gate.row() for gate in shown],
            columns=[
                "case", "metric", "gate", "baseline", "limit", "new",
                "status",
            ],
            title=f"bench gate: {path}",
        ))
    if report.new_cases:
        print(f"new cases (no baseline yet): "
              f"{', '.join(report.new_cases)}")
    if report.missing_cases:
        print(f"WARNING: cases missing from the newest run: "
              f"{', '.join(report.missing_cases)}")

    hard = report.hard_regressions
    soft = report.soft_regressions
    total = len(report.gates)
    if hard:
        print(f"FAIL: {len(hard)} hard regression(s), "
              f"{len(soft)} soft, {total} gates checked")
        return 1
    if soft and not args.hard_only:
        print(f"FAIL: {len(soft)} soft (wall-time) regression(s), "
              f"{total} gates checked")
        return 1
    if soft:
        print(f"WARN: {len(soft)} soft regression(s) ignored "
              f"(--hard-only), {total} gates checked")
    else:
        print(f"OK: {total} gates checked, no regressions")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
