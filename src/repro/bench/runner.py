"""Measured execution of join iterators.

A :class:`MeasuredRun` captures elapsed time plus the counter totals
the paper's Table 1 reports (distance calculations, maximum queue
size, node I/O) for producing a given number of result pairs.

Timing always uses the monotonic ``time.perf_counter`` clock --
``time.time`` is subject to NTP adjustment and coarse resolution,
which makes small benchmark runs noisy.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Optional

from repro.util.counters import CounterRegistry


@dataclass
class MeasuredRun:
    """Outcome of one measured join execution."""

    label: str
    pairs_requested: Optional[int]
    pairs_produced: int
    seconds: float
    counters: Dict[str, int] = field(default_factory=dict)
    peaks: Dict[str, int] = field(default_factory=dict)

    @property
    def dist_calcs(self) -> int:
        """Object distance calculations (Table 1 measure)."""
        return self.counters.get("dist_calcs", 0)

    @property
    def node_io(self) -> int:
        """Buffer-pool misses on tree nodes (Table 1 measure)."""
        return self.counters.get("node_io", 0)

    @property
    def max_queue_size(self) -> int:
        """Peak priority-queue size (Table 1 measure)."""
        return self.peaks.get("queue_size", 0)

    @property
    def throughput_pairs_per_sec(self) -> float:
        """Result pairs produced per second of wall-clock time.

        The headline number for the parallel-scaling benchmark; 0.0
        for a run too fast for the clock to resolve.
        """
        if self.seconds <= 0.0:
            return 0.0
        return self.pairs_produced / self.seconds

    def row(self) -> Dict[str, Any]:
        """A flat dict for table formatting."""
        return {
            "label": self.label,
            "pairs": self.pairs_produced,
            "time_s": round(self.seconds, 4),
            "dist_calcs": self.dist_calcs,
            "max_queue": self.max_queue_size,
            "node_io": self.node_io,
        }


def consume(iterator: Iterator[Any], limit: Optional[int] = None) -> int:
    """Pull up to ``limit`` items (all of them when None); returns the
    number consumed."""
    count = 0
    for __ in iterator:
        count += 1
        if limit is not None and count >= limit:
            break
    return count


def run_join(
    make_join,
    pairs: Optional[int],
    counters: CounterRegistry,
    label: str = "",
    before=None,
) -> MeasuredRun:
    """Build a join via ``make_join()``, consume ``pairs`` results, and
    capture time + counters.

    Counters are reset before the run so the measurement covers exactly
    this execution (including the join's own tree reads).  ``before``
    is an optional callable run first -- typically
    ``workload.cold_caches`` so node I/O starts from a cold buffer
    pool.
    """
    if before is not None:
        before()
    counters.reset()
    start = time.perf_counter()
    join = make_join()
    produced = consume(join, pairs)
    elapsed = time.perf_counter() - start
    return MeasuredRun(
        label=label,
        pairs_requested=pairs,
        pairs_produced=produced,
        seconds=elapsed,
        counters=dict(counters.snapshot()),
        peaks=dict(counters.snapshot_peaks()),
    )
