"""``python -m repro.bench.suite`` -- the tiered benchmark runner.

Runs every :class:`~repro.bench.registry.BenchCase` registered for the
chosen tier min-of-N with fixed seeds, and **appends** one entry to
the performance trajectory file ``BENCH_<tier>.json`` (repo root by
default): wall time per case (all repetitions plus the min), the
paper's deterministic work counters (``dist_calcs``, ``node_io``,
queue peaks), span breakdowns from :mod:`repro.util.obs`, and an
environment fingerprint (interpreter, platform, CPU count, git
commit).  The trajectory is what :mod:`repro.bench.compare` gates
against, so the file is meant to be committed: each landed PR extends
the history, and a PR that quietly doubles ``dist_calcs`` fails the
gate instead of shipping.

Usage::

    python -m repro.bench.suite --tier smoke            # CI tier
    python -m repro.bench.suite --tier full             # paper scale
    python -m repro.bench.suite --tier smoke --trace t.json
    python -m repro.bench.suite --tier smoke --case 'fig6.*'

The ``--trace`` flag additionally exports the run as Chrome
trace-event JSON (Perfetto / ``chrome://tracing``) via
:mod:`repro.util.tracing`.
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import os
import platform
import subprocess
import sys
import time
from typing import Any, Dict, List, Optional

from repro.bench.registry import BenchCase, TIERS, cases_for
from repro.bench.runner import run_join
from repro.bench.workloads import JoinWorkload, build_tiger_workload
from repro.util.obs import NULL_OBSERVER, Observer

__all__ = [
    "environment_fingerprint",
    "load_trajectory",
    "main",
    "run_case",
    "run_suite",
    "trajectory_path",
    "write_entry",
]

#: Trajectory file schema version (bump on incompatible change).
SCHEMA_VERSION = 1

#: Entries retained per trajectory file; the oldest fall off so the
#: committed file stays reviewable.
MAX_ENTRIES = 100


def trajectory_path(tier: str, root: Optional[str] = None) -> str:
    """``BENCH_<tier>.json`` under ``root`` (default: cwd)."""
    return os.path.join(root or os.getcwd(), f"BENCH_{tier}.json")


def environment_fingerprint() -> Dict[str, Any]:
    """Where a measurement came from: interpreter, platform, CPU
    count, and (when available) the git commit of the tree."""
    fingerprint: Dict[str, Any] = {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=5,
        )
        fingerprint["git"] = (
            sha.stdout.strip() if sha.returncode == 0 else None
        )
    except (OSError, subprocess.SubprocessError):
        fingerprint["git"] = None
    return fingerprint


def run_case(
    case: BenchCase,
    load: JoinWorkload,
    tier: str,
    repeat: int,
    suite_obs: Optional[Observer] = None,
) -> Dict[str, Any]:
    """Execute one case min-of-N and return its trajectory record.

    Every repetition runs against cold caches and reset counters (the
    discipline of ``benchmarks/common.fresh``); wall time keeps the
    minimum (the classic min-of-N noise filter -- the minimum is the
    run least disturbed by the machine), while counters come from the
    last repetition and are checked for stability across repetitions.
    """
    pairs = case.pairs_for(tier)
    seconds_all: List[float] = []
    counters_stable = True
    run = None
    reference: Optional[Dict[str, int]] = None
    case_obs = Observer(max_events=0)
    for __ in range(max(1, repeat)):
        obs = Observer(max_events=0)
        span = (
            suite_obs.span(f"case.{case.name}")
            if suite_obs is not None else NULL_OBSERVER.span("")
        )
        with span:
            run = run_join(
                lambda: case.build(load, obs, pairs),
                pairs,
                load.counters,
                label=case.name,
                before=lambda: (
                    load.cold_caches(), load.reset_counters(),
                ),
            )
        seconds_all.append(run.seconds)
        if reference is None:
            reference = dict(run.counters)
        elif dict(run.counters) != reference:
            counters_stable = False
        case_obs = obs
    assert run is not None
    snapshot = case_obs.snapshot()
    return {
        "description": case.description,
        "pairs_requested": pairs,
        "pairs": run.pairs_produced,
        "seconds": min(seconds_all),
        "seconds_all": [round(s, 6) for s in seconds_all],
        "counters": dict(run.counters),
        "peaks": dict(run.peaks),
        "spans": {
            name: [count, round(total, 6)]
            for name, (count, total, __, ___) in sorted(
                snapshot.spans.items()
            )
        },
        "deterministic": case.deterministic,
        "counters_stable": counters_stable,
    }


def run_suite(
    tier: str,
    repeat: Optional[int] = None,
    scale: Optional[float] = None,
    case_pattern: Optional[str] = None,
    suite_obs: Optional[Observer] = None,
    progress=None,
) -> Dict[str, Any]:
    """Run a tier's cases and return one trajectory entry (not yet
    written; see :func:`write_entry`)."""
    config = TIERS[tier]
    repeat = repeat if repeat is not None else config.repeat
    scale = scale if scale is not None else config.scale
    cases = cases_for(tier)
    if case_pattern:
        cases = [
            case for case in cases
            if fnmatch.fnmatch(case.name, case_pattern)
        ]
    load = build_tiger_workload(scale=scale)
    results: Dict[str, Any] = {}
    for case in cases:
        if progress is not None:
            progress(case)
        results[case.name] = run_case(
            case, load, tier, repeat, suite_obs=suite_obs
        )
    return {
        "meta": {
            "suite": tier,
            "scale": scale,
            "repeat": repeat,
            "timestamp": time.strftime(
                "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
            ),
            **environment_fingerprint(),
        },
        "cases": results,
    }


def load_trajectory(path: str) -> Dict[str, Any]:
    """Read a trajectory file; a missing file is an empty history."""
    if not os.path.exists(path):
        return {"schema": SCHEMA_VERSION, "entries": []}
    with open(path) as handle:
        data = json.load(handle)
    if not isinstance(data, dict) or "entries" not in data:
        raise ValueError(
            f"{path} is not a BENCH trajectory file "
            f"(expected an object with an 'entries' list)"
        )
    return data


def write_entry(
    path: str, entry: Dict[str, Any], reset: bool = False
) -> Dict[str, Any]:
    """Append ``entry`` to the trajectory at ``path`` (capped at
    :data:`MAX_ENTRIES`, oldest dropped); returns the file content."""
    data = (
        {"schema": SCHEMA_VERSION, "entries": []}
        if reset else load_trajectory(path)
    )
    data["schema"] = SCHEMA_VERSION
    data["entries"].append(entry)
    if len(data["entries"]) > MAX_ENTRIES:
        data["entries"] = data["entries"][-MAX_ENTRIES:]
    with open(path, "w") as handle:
        json.dump(data, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return data


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.suite",
        description="run the tiered benchmark suite and append the "
                    "results to BENCH_<tier>.json",
    )
    parser.add_argument(
        "--tier", default="smoke", choices=sorted(TIERS),
        help="which registered tier to run (default: smoke)",
    )
    parser.add_argument(
        "--repeat", type=int, default=None, metavar="N",
        help="min-of-N repetitions per case (default: the tier's)",
    )
    parser.add_argument(
        "--scale", type=float, default=None,
        help="workload scale override (default: the tier's)",
    )
    parser.add_argument(
        "--case", default=None, metavar="GLOB",
        help="only run cases whose name matches this glob",
    )
    parser.add_argument(
        "--out", default=None, metavar="FILE",
        help="trajectory file (default: ./BENCH_<tier>.json)",
    )
    parser.add_argument(
        "--reset", action="store_true",
        help="start a fresh trajectory instead of appending",
    )
    parser.add_argument(
        "--trace", default=None, metavar="FILE",
        help="also export the run as Chrome trace-event JSON "
             "(open in Perfetto or chrome://tracing)",
    )
    parser.add_argument(
        "--list", action="store_true",
        help="list the tier's registered cases and exit",
    )
    args = parser.parse_args(argv)

    if args.list:
        for case in cases_for(args.tier):
            pairs = case.pairs_for(args.tier)
            print(f"{case.name:<32} pairs={pairs!s:<8} "
                  f"{'hard-gated' if case.deterministic else 'soft'}  "
                  f"{case.description}")
        return 0

    suite_obs = Observer(trace_spans=True)
    started = time.perf_counter()
    entry = run_suite(
        args.tier, repeat=args.repeat, scale=args.scale,
        case_pattern=args.case, suite_obs=suite_obs,
        progress=lambda case: print(
            f"  running {case.name} ...", file=sys.stderr
        ),
    )
    elapsed = time.perf_counter() - started
    if not entry["cases"]:
        print("error: no cases matched", file=sys.stderr)
        return 2

    out = args.out or trajectory_path(args.tier)
    data = write_entry(out, entry, reset=args.reset)
    for name, record in entry["cases"].items():
        stable = "" if record["counters_stable"] else "  [UNSTABLE]"
        print(
            f"{name:<32} {record['seconds']*1e3:9.2f} ms  "
            f"dist_calcs={record['counters'].get('dist_calcs', 0):>9,}  "
            f"node_io={record['counters'].get('node_io', 0):>6,}"
            f"{stable}"
        )
    print(
        f"suite '{args.tier}': {len(entry['cases'])} case(s) in "
        f"{elapsed:.2f}s -> {out} "
        f"(entry {len(data['entries'])}/{MAX_ENTRIES})"
    )
    if args.trace:
        from repro.util.tracing import observer_trace, write_chrome_trace

        write_chrome_trace(
            args.trace,
            observer_trace(
                suite_obs, process_name="repro.bench.suite",
                thread_name=f"tier-{args.tier}",
            ),
            metadata={"tier": args.tier, "entry": entry["meta"]},
        )
        print(f"trace -> {args.trace}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
