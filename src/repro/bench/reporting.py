"""Plain-text table/series formatting for benchmark output.

The benchmark scripts print the same rows and series the paper's
tables and figures report, so EXPERIMENTS.md can be filled in by
copy-paste.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Sequence


def format_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str],
    title: str = "",
) -> str:
    """Render rows as an aligned monospace table."""
    widths = {c: len(c) for c in columns}
    rendered: List[List[str]] = []
    for row in rows:
        cells = []
        for column in columns:
            text = _fmt(row.get(column, ""))
            widths[column] = max(widths[column], len(text))
            cells.append(text)
        rendered.append(cells)
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for cells in rendered:
        lines.append(
            "  ".join(
                cell.rjust(widths[column])
                for cell, column in zip(cells, columns)
            )
        )
    return "\n".join(lines)


def format_series(
    series: Mapping[str, Sequence[float]],
    x_values: Sequence[Any],
    x_label: str = "pairs",
    title: str = "",
) -> str:
    """Render figure-style data: one row per x value, one column per
    labelled series (the shape of the paper's execution-time plots)."""
    columns = [x_label] + list(series)
    rows: List[Dict[str, Any]] = []
    for i, x in enumerate(x_values):
        row: Dict[str, Any] = {x_label: x}
        for label, values in series.items():
            row[label] = values[i] if i < len(values) else ""
        rows.append(row)
    return format_table(rows, columns, title=title)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.4g}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)
