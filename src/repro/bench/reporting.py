"""Plain-text table/series formatting + metrics export for benchmarks.

The benchmark scripts print the same rows and series the paper's
tables and figures report, so EXPERIMENTS.md can be filled in by
copy-paste.  :func:`run_metrics` additionally serializes a
:class:`~repro.bench.runner.MeasuredRun` into the observability
layer's shared metric schema (:mod:`repro.util.obs`), so benchmark
output, the CLI's ``--metrics`` flag, and ``EXPLAIN ANALYZE`` all
emit identical records.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.util.counters import CounterSnapshot
from repro.util.obs import Observer, metrics_records, write_metrics


def format_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str],
    title: str = "",
) -> str:
    """Render rows as an aligned monospace table."""
    widths = {c: len(c) for c in columns}
    rendered: List[List[str]] = []
    for row in rows:
        cells = []
        for column in columns:
            text = _fmt(row.get(column, ""))
            widths[column] = max(widths[column], len(text))
            cells.append(text)
        rendered.append(cells)
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for cells in rendered:
        lines.append(
            "  ".join(
                cell.rjust(widths[column])
                for cell, column in zip(cells, columns)
            )
        )
    return "\n".join(lines)


def format_series(
    series: Mapping[str, Sequence[float]],
    x_values: Sequence[Any],
    x_label: str = "pairs",
    title: str = "",
) -> str:
    """Render figure-style data: one row per x value, one column per
    labelled series (the shape of the paper's execution-time plots)."""
    columns = [x_label] + list(series)
    rows: List[Dict[str, Any]] = []
    for i, x in enumerate(x_values):
        row: Dict[str, Any] = {x_label: x}
        for label, values in series.items():
            row[label] = values[i] if i < len(values) else ""
        rows.append(row)
    return format_table(rows, columns, title=title)


def run_metrics(
    run: Any, labels: Optional[Mapping[str, Any]] = None
) -> List[Dict[str, Any]]:
    """A :class:`~repro.bench.runner.MeasuredRun` as shared-schema
    metric records: its counters, peaks, and wall time (as the
    ``bench.run`` span)."""
    obs = Observer(max_events=0)
    obs.record_span("bench.run", run.seconds)
    label_dict: Dict[str, Any] = {}
    if getattr(run, "label", ""):
        label_dict["label"] = run.label
    if labels:
        label_dict.update(labels)
    label_dict.setdefault("pairs", run.pairs_produced)
    snapshot = CounterSnapshot(
        values=dict(run.counters), peaks=dict(run.peaks)
    )
    return metrics_records(snapshot, obs, label_dict)


def write_run_metrics(
    path: str,
    runs: Sequence[Any],
    labels: Optional[Sequence[Mapping[str, Any]]] = None,
) -> List[Dict[str, Any]]:
    """Write many runs' metrics to ``path`` (JSON-lines plus a
    ``.prom`` dump); ``labels`` optionally supplies one label mapping
    per run.  Returns the records written."""
    records: List[Dict[str, Any]] = []
    for index, run in enumerate(runs):
        run_labels = labels[index] if labels else None
        records.extend(run_metrics(run, run_labels))
    return write_metrics(path, records=records)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.4g}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)
