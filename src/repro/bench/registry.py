"""The benchmark-case registry behind ``repro.bench.suite``.

Every performance-sensitive configuration the paper measures -- Table
1's Even/DepthFirst join, Figure 6's traversal variants, Figure 7's
distance/pair bounds, Figure 8's hybrid queue, Figures 9-10's
semi-join strategies -- plus the parallel engine is registered here as
a :class:`BenchCase`: a named, seeded configuration with a result-size
budget per tier.  A case is *data*, not code: its join knobs are a
:class:`repro.core.spec.JoinSpec` (or a factory producing one from
the workload, for knobs like ``D_T`` that depend on the data scale),
its operator family a string, and only engine-level options (worker
counts, backends) ride outside the spec.  The suite runner
(:mod:`repro.bench.suite`) executes the registered cases min-of-N and
appends the measurements to the repo's ``BENCH_<tier>.json``
trajectory; the regression gate (:mod:`repro.bench.compare`) diffs
the newest entry against that committed history.

Tiers
-----
``smoke``
    Small scale (CI gate; the whole tier runs in seconds).
``full``
    The EXPERIMENTS.md scale; minutes, run locally before perf PRs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from repro.bench.workloads import JoinWorkload, suggest_dt
from repro.core.distance_join import IncrementalDistanceJoin
from repro.core.semi_join import IncrementalDistanceSemiJoin
from repro.core.spec import JoinSpec
from repro.util.obs import Observer

__all__ = [
    "BenchCase",
    "REGISTRY",
    "SMOKE",
    "FULL",
    "TIERS",
    "TierConfig",
    "cases_for",
    "register",
]

SMOKE = "smoke"
FULL = "full"

#: Operator families a case can exercise.
OPERATORS = ("join", "semi", "parallel", "service", "shard", "live")

#: A case's join configuration: a spec, or a factory deriving one
#: from the workload and the tier's result budget.
SpecSource = Union[
    JoinSpec, Callable[[JoinWorkload, Optional[int]], JoinSpec]
]


@dataclass(frozen=True)
class TierConfig:
    """Workload scale and default repetition count of one tier."""

    name: str
    scale: float
    repeat: int


TIERS: Dict[str, TierConfig] = {
    SMOKE: TierConfig(name=SMOKE, scale=0.004, repeat=3),
    FULL: TierConfig(name=FULL, scale=0.05, repeat=2),
}


@dataclass(frozen=True)
class BenchCase:
    """One registered benchmark configuration.

    ``spec`` holds the join knobs (static, or derived per workload);
    ``operator`` selects the family (``join`` / ``semi`` /
    ``parallel`` / ``service``); ``engine`` carries engine options
    that are deliberately *not* part of the spec (workers, backend;
    the service family's suspend cadence).  The
    runner calls :meth:`build` per repetition against cold caches and
    reset counters, exactly like the ``benchmarks/`` scripts, and
    consumes the tier's ``pairs`` budget (None = exhaust).
    ``deterministic`` marks whether the case's counters are exactly
    reproducible run-to-run -- those counters are *hard* regression
    gates; counters of scheduling-dependent cases (the parallel
    engine) only get the noise-banded soft gate.
    """

    name: str
    description: str
    spec: SpecSource = field(default_factory=JoinSpec)
    pairs: Mapping[str, Optional[int]] = field(default_factory=dict)
    operator: str = "join"
    engine: Mapping[str, object] = field(default_factory=dict)
    tiers: Tuple[str, ...] = (SMOKE, FULL)
    deterministic: bool = True

    def pairs_for(self, tier: str) -> Optional[int]:
        return self.pairs.get(tier)

    def spec_for(
        self, load: JoinWorkload, pairs: Optional[int]
    ) -> JoinSpec:
        """Resolve the case's spec against a concrete workload."""
        if isinstance(self.spec, JoinSpec):
            return self.spec
        return self.spec(load, pairs)

    def build(
        self,
        load: JoinWorkload,
        obs: Observer,
        pairs: Optional[int],
    ) -> Iterator:
        """A fresh join iterator for one repetition."""
        spec = self.spec_for(load, pairs)
        common = dict(counters=load.counters, observer=obs)
        if self.operator == "semi":
            return IncrementalDistanceSemiJoin(
                load.tree1, load.tree2, spec, **common
            )
        if self.operator == "parallel":
            from repro.parallel import ParallelDistanceJoin

            return ParallelDistanceJoin(
                load.tree1, load.tree2, spec,
                **common, **dict(self.engine),
            )
        if self.operator == "shard":
            from repro.shard import ShardRouterJoin, clear_caches

            # Fresh catalogs and plans per repetition: measured
            # counters include the routing work and stay identical
            # run to run.
            clear_caches()
            return ShardRouterJoin(
                load.tree1, load.tree2, spec, **common,
                catalog_cache=False, result_cache=False,
                **dict(self.engine),
            )
        if self.operator == "live":
            from repro.bench.live import update_repair_stream

            return update_repair_stream(
                load, spec, **common, **dict(self.engine),
            )
        if self.operator == "service":
            from repro.service.overhead import resumed_join

            return resumed_join(
                load.tree1, load.tree2, spec,
                **common, **dict(self.engine),
            )
        if self.operator != "join":
            raise ValueError(
                f"unknown operator {self.operator!r}; "
                f"expected one of {OPERATORS}"
            )
        return IncrementalDistanceJoin(
            load.tree1, load.tree2, spec, **common
        )


REGISTRY: List[BenchCase] = []


def register(case: BenchCase) -> BenchCase:
    """Add a case; rejects duplicate names (the trajectory file keys
    measurements by case name, so collisions would corrupt history)."""
    if any(existing.name == case.name for existing in REGISTRY):
        raise ValueError(f"duplicate benchmark case {case.name!r}")
    REGISTRY.append(case)
    return case


def cases_for(tier: str) -> List[BenchCase]:
    """Every registered case participating in ``tier``."""
    if tier not in TIERS:
        raise ValueError(
            f"unknown tier {tier!r}; expected one of {sorted(TIERS)}"
        )
    return [case for case in REGISTRY if tier in case.tiers]


# ----------------------------------------------------------------------
# the standard cases (Table 1, Figures 6-10, parallel scaling)
# ----------------------------------------------------------------------


register(BenchCase(
    name="table1.even_depthfirst",
    description="Table 1: Even/DepthFirst incremental distance join",
    spec=JoinSpec(node_policy="even", tie_break="depth_first"),
    pairs={SMOKE: 100, FULL: 10_000},
))

register(BenchCase(
    name="fig6.even_breadthfirst",
    description="Figure 6: Even/BreadthFirst traversal variant",
    spec=JoinSpec(node_policy="even", tie_break="breadth_first"),
    pairs={SMOKE: 100, FULL: 10_000},
))

register(BenchCase(
    name="fig6.basic_depthfirst",
    description="Figure 6: Basic/DepthFirst traversal variant",
    spec=JoinSpec(node_policy="basic", tie_break="depth_first"),
    pairs={SMOKE: 100, FULL: 1_000},
))

register(BenchCase(
    name="fig6.simultaneous_depthfirst",
    description="Figure 6: Simultaneous/DepthFirst traversal variant",
    spec=JoinSpec(node_policy="simultaneous", tie_break="depth_first"),
    pairs={SMOKE: 50, FULL: 1_000},
))

register(BenchCase(
    name="fig7.maxdist",
    description="Figure 7: join bounded by an oracle-ish MaxDist",
    spec=lambda load, pairs: JoinSpec(max_distance=suggest_dt(load)),
    pairs={SMOKE: 100, FULL: 10_000},
))

register(BenchCase(
    name="fig7.maxpairs",
    description="Figure 7: join with MaxPair estimation pruning",
    spec=lambda load, pairs: JoinSpec(max_pairs=pairs, estimate=True),
    pairs={SMOKE: 100, FULL: 10_000},
))

register(BenchCase(
    name="fig8.hybrid_queue",
    description="Figure 8: hybrid memory/disk priority queue",
    spec=lambda load, pairs: JoinSpec(
        queue="hybrid", queue_dt=suggest_dt(load),
    ),
    pairs={SMOKE: 100, FULL: 10_000},
))

register(BenchCase(
    name="fig8.adaptive_queue",
    description="Figure 8: adaptive-D_T hybrid queue",
    spec=JoinSpec(queue="adaptive"),
    pairs={SMOKE: 100, FULL: 10_000},
))

register(BenchCase(
    name="fig9.semijoin_local",
    description="Figure 9: semi-join, Inside2 filtering, local d_max",
    spec=JoinSpec(filter_strategy="inside2", dmax_strategy="local"),
    pairs={SMOKE: None, FULL: 1_000},
    operator="semi",
))

register(BenchCase(
    name="fig9.semijoin_globalall",
    description="Figure 9: semi-join, GlobalAll d_max strategy",
    spec=JoinSpec(filter_strategy="inside2", dmax_strategy="global_all"),
    pairs={SMOKE: None, FULL: 1_000},
    operator="semi",
))

register(BenchCase(
    name="fig10.semijoin_maxdist",
    description="Figure 10: semi-join bounded by MaxDist",
    spec=lambda load, pairs: JoinSpec(max_distance=suggest_dt(load)),
    pairs={SMOKE: None, FULL: 1_000},
    operator="semi",
))

register(BenchCase(
    name="service.suspend_resume",
    description="Service: join suspended/resumed through pickled "
                "cursors every 32 results",
    spec=lambda load, pairs: JoinSpec(max_pairs=pairs),
    pairs={SMOKE: 100, FULL: 10_000},
    operator="service",
    engine={"every": 32, "through_bytes": True},
))

def _vector_or_scalar(load: JoinWorkload, pairs: Optional[int]) -> JoinSpec:
    """Fig 6 workload on the vector kernels when numpy is importable
    (falling back to scalar so the case still runs everywhere).  The
    wall time depends on which path ran, so the case is reported, not
    gated; its counters are identical either way by construction."""
    from repro.kernels import kernels_available

    kernel = "vector" if kernels_available() else "scalar"
    return JoinSpec(node_policy="even", tie_break="depth_first",
                    kernel=kernel)


register(BenchCase(
    name="kernels.vector_speedup",
    description="Vectorized node expansion (numpy batch bounds) on "
                "the Fig 6 Even/DepthFirst workload",
    spec=_vector_or_scalar,
    pairs={SMOKE: 100, FULL: 10_000},
    deterministic=False,
))

def _shard_spec(load: JoinWorkload, pairs: Optional[int]) -> JoinSpec:
    """A Fig 6-style STOP AFTER workload: ask for a sliver of the
    result set, so lazy admission routes only the near shard pairs
    and provably prunes the rest.  The cap lives in the spec (not the
    consume budget) so the router stops -- and finalizes its pruning
    counters -- by itself."""
    return JoinSpec(max_pairs=max(32, len(load.tree1) // 4))


register(BenchCase(
    name="shard.router_pruning",
    description="Shard router: MINDIST-ordered shard pairs, lazy "
                "admission, STOP AFTER pruning (4x4 shard catalog)",
    spec=_shard_spec,
    pairs={SMOKE: None, FULL: None},
    operator="shard",
    engine={"shards": 4},
))

register(BenchCase(
    name="live.update_repair",
    description="Standing join: top-16 repair deltas across a "
                "scripted insert/delete schedule (private trees)",
    spec=JoinSpec(max_pairs=16),
    pairs={SMOKE: None, FULL: None},
    operator="live",
    engine={"updates": 32},
))

register(BenchCase(
    name="parallel.thread_x2",
    description="Parallel scaling: 2 thread workers, ordered merge",
    spec=lambda load, pairs: JoinSpec(max_pairs=pairs),
    pairs={SMOKE: 100, FULL: 10_000},
    operator="parallel",
    engine={"workers": 2, "backend": "thread"},
    deterministic=False,
))
