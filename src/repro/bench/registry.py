"""The benchmark-case registry behind ``repro.bench.suite``.

Every performance-sensitive configuration the paper measures -- Table
1's Even/DepthFirst join, Figure 6's traversal variants, Figure 7's
distance/pair bounds, Figure 8's hybrid queue, Figures 9-10's
semi-join strategies -- plus the parallel engine is registered here as
a :class:`BenchCase`: a named, seeded join factory with a result-size
budget per tier.  The suite runner (:mod:`repro.bench.suite`) executes
the registered cases min-of-N and appends the measurements to the
repo's ``BENCH_<tier>.json`` trajectory; the regression gate
(:mod:`repro.bench.compare`) diffs the newest entry against that
committed history.

Tiers
-----
``smoke``
    Small scale (CI gate; the whole tier runs in seconds).
``full``
    The EXPERIMENTS.md scale; minutes, run locally before perf PRs.

Cases are plain data: registering one costs a :class:`BenchCase`
constructor call, and anything constructible from a
:class:`~repro.bench.workloads.JoinWorkload` plus an
:class:`~repro.util.obs.Observer` qualifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Tuple

from repro.bench.workloads import JoinWorkload, suggest_dt
from repro.core.distance_join import IncrementalDistanceJoin
from repro.core.semi_join import IncrementalDistanceSemiJoin
from repro.util.obs import Observer

__all__ = [
    "BenchCase",
    "REGISTRY",
    "SMOKE",
    "FULL",
    "TIERS",
    "TierConfig",
    "cases_for",
    "register",
]

SMOKE = "smoke"
FULL = "full"


@dataclass(frozen=True)
class TierConfig:
    """Workload scale and default repetition count of one tier."""

    name: str
    scale: float
    repeat: int


TIERS: Dict[str, TierConfig] = {
    SMOKE: TierConfig(name=SMOKE, scale=0.004, repeat=3),
    FULL: TierConfig(name=FULL, scale=0.05, repeat=2),
}


@dataclass(frozen=True)
class BenchCase:
    """One registered benchmark configuration.

    ``make(workload, observer, pairs)`` returns a fresh join
    iterator (``pairs`` is the tier's result budget, so bounded
    variants like MaxPair can pass it through); the runner consumes
    ``pairs`` results from it (None = exhaust)
    against cold caches and reset counters, exactly like the
    ``benchmarks/`` scripts.  ``deterministic`` marks whether the
    case's counters are exactly reproducible run-to-run -- those
    counters are *hard* regression gates; counters of scheduling-
    dependent cases (the parallel engine) only get the noise-banded
    soft gate.
    """

    name: str
    description: str
    make: Callable[[JoinWorkload, Observer, Optional[int]], Iterator]
    pairs: Mapping[str, Optional[int]]
    tiers: Tuple[str, ...] = (SMOKE, FULL)
    deterministic: bool = True

    def pairs_for(self, tier: str) -> Optional[int]:
        return self.pairs.get(tier)


REGISTRY: List[BenchCase] = []


def register(case: BenchCase) -> BenchCase:
    """Add a case; rejects duplicate names (the trajectory file keys
    measurements by case name, so collisions would corrupt history)."""
    if any(existing.name == case.name for existing in REGISTRY):
        raise ValueError(f"duplicate benchmark case {case.name!r}")
    REGISTRY.append(case)
    return case


def cases_for(tier: str) -> List[BenchCase]:
    """Every registered case participating in ``tier``."""
    if tier not in TIERS:
        raise ValueError(
            f"unknown tier {tier!r}; expected one of {sorted(TIERS)}"
        )
    return [case for case in REGISTRY if tier in case.tiers]


# ----------------------------------------------------------------------
# the standard cases (Table 1, Figures 6-10, parallel scaling)
# ----------------------------------------------------------------------


def _join(load: JoinWorkload, obs: Observer, **options) -> Iterator:
    return IncrementalDistanceJoin(
        load.tree1, load.tree2, counters=load.counters, observer=obs,
        **options,
    )


def _semi(load: JoinWorkload, obs: Observer, **options) -> Iterator:
    return IncrementalDistanceSemiJoin(
        load.tree1, load.tree2, counters=load.counters, observer=obs,
        **options,
    )


def _parallel(load: JoinWorkload, obs: Observer, **options) -> Iterator:
    from repro.parallel import ParallelDistanceJoin

    return ParallelDistanceJoin(
        load.tree1, load.tree2, counters=load.counters, observer=obs,
        **options,
    )


register(BenchCase(
    name="table1.even_depthfirst",
    description="Table 1: Even/DepthFirst incremental distance join",
    make=lambda load, obs, pairs: _join(
        load, obs, node_policy="even", tie_break="depth_first",
    ),
    pairs={SMOKE: 100, FULL: 10_000},
))

register(BenchCase(
    name="fig6.even_breadthfirst",
    description="Figure 6: Even/BreadthFirst traversal variant",
    make=lambda load, obs, pairs: _join(
        load, obs, node_policy="even", tie_break="breadth_first",
    ),
    pairs={SMOKE: 100, FULL: 10_000},
))

register(BenchCase(
    name="fig6.basic_depthfirst",
    description="Figure 6: Basic/DepthFirst traversal variant",
    make=lambda load, obs, pairs: _join(
        load, obs, node_policy="basic", tie_break="depth_first",
    ),
    pairs={SMOKE: 100, FULL: 1_000},
))

register(BenchCase(
    name="fig6.simultaneous_depthfirst",
    description="Figure 6: Simultaneous/DepthFirst traversal variant",
    make=lambda load, obs, pairs: _join(
        load, obs, node_policy="simultaneous", tie_break="depth_first",
    ),
    pairs={SMOKE: 50, FULL: 1_000},
))

register(BenchCase(
    name="fig7.maxdist",
    description="Figure 7: join bounded by an oracle-ish MaxDist",
    make=lambda load, obs, pairs: _join(
        load, obs, max_distance=suggest_dt(load),
    ),
    pairs={SMOKE: 100, FULL: 10_000},
))

register(BenchCase(
    name="fig7.maxpairs",
    description="Figure 7: join with MaxPair estimation pruning",
    make=lambda load, obs, pairs: _join(
        load, obs, max_pairs=pairs, estimate=True,
    ),
    pairs={SMOKE: 100, FULL: 10_000},
))

register(BenchCase(
    name="fig8.hybrid_queue",
    description="Figure 8: hybrid memory/disk priority queue",
    make=lambda load, obs, pairs: _join(
        load, obs, queue="hybrid", queue_dt=suggest_dt(load),
    ),
    pairs={SMOKE: 100, FULL: 10_000},
))

register(BenchCase(
    name="fig8.adaptive_queue",
    description="Figure 8: adaptive-D_T hybrid queue",
    make=lambda load, obs, pairs: _join(load, obs, queue="adaptive"),
    pairs={SMOKE: 100, FULL: 10_000},
))

register(BenchCase(
    name="fig9.semijoin_local",
    description="Figure 9: semi-join, Inside2 filtering, local d_max",
    make=lambda load, obs, pairs: _semi(
        load, obs, filter_strategy="inside2", dmax_strategy="local",
    ),
    pairs={SMOKE: None, FULL: 1_000},
))

register(BenchCase(
    name="fig9.semijoin_globalall",
    description="Figure 9: semi-join, GlobalAll d_max strategy",
    make=lambda load, obs, pairs: _semi(
        load, obs, filter_strategy="inside2",
        dmax_strategy="global_all",
    ),
    pairs={SMOKE: None, FULL: 1_000},
))

register(BenchCase(
    name="fig10.semijoin_maxdist",
    description="Figure 10: semi-join bounded by MaxDist",
    make=lambda load, obs, pairs: _semi(
        load, obs, max_distance=suggest_dt(load),
    ),
    pairs={SMOKE: None, FULL: 1_000},
))

register(BenchCase(
    name="parallel.thread_x2",
    description="Parallel scaling: 2 thread workers, ordered merge",
    make=lambda load, obs, pairs: _parallel(
        load, obs, workers=2, backend="thread", max_pairs=pairs,
    ),
    pairs={SMOKE: 100, FULL: 10_000},
    deterministic=False,
))
