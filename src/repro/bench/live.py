"""The ``live`` benchmark family: standing-join update repair.

Measures what the standing join exists for: the cost of keeping a
top-K result current across a scripted insert/delete schedule,
counted per *repair* rather than per full recomputation.  The stream
yields one item per emitted delta, so the suite's ``pairs_produced``
is the delta volume and the counter totals (``dist_calcs``,
``bound_calcs``, ``live_probe_pairs``, ``live_repairs``,
``live_refills``) are the per-update repair work -- all deterministic
and therefore hard-gated by :mod:`repro.bench.compare`.

The stream builds *private* trees from the workload's point lists
(never mutating the shared workload trees the other cases measure);
tree construction and mutation I/O are charged to a private registry
so the measured counters cover only the repair machinery.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.core.spec import JoinSpec
from repro.live import Delta, StandingJoin
from repro.rtree.bulk import bulk_load_str
from repro.util.counters import CounterRegistry
from repro.util.obs import Observer
from repro.util.validation import require_positive

__all__ = ["update_repair_stream"]

#: Synthetic oid base for scripted inserts (clear of bulk-loaded oids).
_UPDATE_OID_BASE = 10_000_000


def update_repair_stream(
    load,
    spec: JoinSpec,
    counters: Optional[CounterRegistry] = None,
    observer: Optional[Observer] = None,
    updates: int = 32,
) -> Iterator[Delta]:
    """Yield every repair delta of a scripted update schedule.

    The scripted inserts copy the first ``updates`` points of the
    *second* relation into the first relation's tree: each one creates
    a zero-distance pair that is guaranteed to crack the top-K, so
    every insert emits deltas.  Every third step deletes the oldest
    still-present scripted insert, retracting a published pair and
    exercising the refill path.  The schedule is a pure function of
    the workload, so repeated runs produce identical counters.
    """
    require_positive(updates, "updates")
    updates = min(updates, max(1, len(load.points2) // 4))
    held = load.points2[:updates]
    base = list(load.points1)

    # Private trees and a private registry for build/mutation I/O:
    # the measured registry sees only the standing join's repair work.
    tree_counters = CounterRegistry()
    tree1 = bulk_load_str(
        base, max_entries=load.tree1.max_entries,
        counters=tree_counters, dim=2,
    )
    tree2 = bulk_load_str(
        list(load.points2), max_entries=load.tree2.max_entries,
        counters=tree_counters, dim=2,
    )

    standing = StandingJoin(
        tree1, tree2, spec, counters=counters, observer=observer
    )
    # The bootstrap scan's ADD deltas are part of the stream: they are
    # the subscription's initial page.
    for delta in standing.poll():
        yield delta

    inserted: list = []
    for step, point in enumerate(held):
        oid = _UPDATE_OID_BASE + step
        for delta in standing.insert(oid, point):
            yield delta
        inserted.append(oid)
        if step % 3 == 2:
            victim = inserted.pop(0)
            for delta in standing.delete(victim):
                yield delta
