"""Workload construction for the benchmark scripts.

The paper's workload is "join *Water* with *Roads*" over R*-trees with
fan-out 50 and a 256-page buffer.  :func:`build_tiger_workload` builds
the synthetic equivalent at a configurable scale (default 1:10 -- the
substrate is pure Python) with exactly those tree parameters.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.datasets.tiger_like import (
    ROADS_FULL_SIZE,
    WATER_FULL_SIZE,
    roads_points,
    water_points,
)
from repro.geometry.point import Point
from repro.rtree.base import RTreeBase
from repro.rtree.bulk import bulk_load_str
from repro.util.counters import CounterRegistry
from repro.util.validation import require


@dataclass
class JoinWorkload:
    """Two loaded trees plus their shared counter registry."""

    name: str
    tree1: RTreeBase
    tree2: RTreeBase
    counters: CounterRegistry
    points1: List[Point]
    points2: List[Point]

    def reset_counters(self) -> None:
        """Zero the counters (call between build and measurement)."""
        self.counters.reset()

    def cold_caches(self) -> None:
        """Empty both trees' buffer pools so node I/O measurements
        start from a cold cache, as each of the paper's runs does."""
        self.tree1.pool.clear()
        self.tree2.pool.clear()

    def swapped(self) -> "JoinWorkload":
        """The workload with relation order reversed (Roads ⋈ Water)."""
        return JoinWorkload(
            name=f"{self.name}-swapped",
            tree1=self.tree2,
            tree2=self.tree1,
            counters=self.counters,
            points1=self.points2,
            points2=self.points1,
        )


def build_tiger_workload(
    scale: float = 0.1,
    max_entries: int = 50,
    buffer_pages: int = 256,
    counters: Optional[CounterRegistry] = None,
) -> JoinWorkload:
    """Water ⋈ Roads at ``scale`` times the paper's cardinalities.

    Trees are STR bulk-loaded (the paper's trees are prebuilt too);
    counters are reset after loading so measurements see only query
    work.
    """
    require(0.0 < scale <= 1.0, "scale must be in (0, 1]")
    counters = counters if counters is not None else CounterRegistry()
    water_count = max(10, int(WATER_FULL_SIZE * scale))
    roads_count = max(10, int(ROADS_FULL_SIZE * scale))
    water = water_points(water_count)
    roads = roads_points(roads_count)
    tree_water = bulk_load_str(
        water, max_entries=max_entries, buffer_pages=buffer_pages,
        counters=counters, dim=2,
    )
    tree_roads = bulk_load_str(
        roads, max_entries=max_entries, buffer_pages=buffer_pages,
        counters=counters, dim=2,
    )
    counters.reset()
    return JoinWorkload(
        name=f"water-roads-{scale:g}",
        tree1=tree_water,
        tree2=tree_roads,
        counters=counters,
        points1=water,
        points2=roads,
    )


def suggest_dt(workload: JoinWorkload, bands: int = 50) -> float:
    """A reasonable hybrid-queue ``D_T`` for a workload.

    The paper picks ``D_T`` empirically per data set (the distances of
    pairs number 7,663 and 34,906).  This heuristic divides the
    diagonal of the two data sets' joint bounding box by ``bands``:
    pair distances concentrate far below the diagonal, so the first
    band holds the hot prefix while distant pairs spill to disk.
    """
    require(bands >= 1, "bands must be at least 1")
    bounds1 = workload.tree1.bounds()
    bounds2 = workload.tree2.bounds()
    if bounds1 is None or bounds2 is None:
        return 1.0
    joint = bounds1.union(bounds2)
    diagonal = math.sqrt(
        sum((hi - lo) ** 2 for lo, hi in zip(joint.lo, joint.hi))
    )
    return max(diagonal / bands, 1e-9)
