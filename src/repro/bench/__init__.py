"""Benchmark harness: workload construction, measured runs, reporting.

Each script under ``benchmarks/`` regenerates one table or figure of
the paper using these utilities; they are library code so the test
suite can exercise them at tiny scale.
"""

from repro.bench.workloads import (
    JoinWorkload,
    build_tiger_workload,
    suggest_dt,
)
from repro.bench.runner import MeasuredRun, consume, run_join
from repro.bench.reporting import format_series, format_table
from repro.bench.registry import BenchCase, cases_for, register

__all__ = [
    "BenchCase",
    "JoinWorkload",
    "build_tiger_workload",
    "cases_for",
    "register",
    "suggest_dt",
    "MeasuredRun",
    "run_join",
    "consume",
    "format_table",
    "format_series",
]
