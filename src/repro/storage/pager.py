"""A simulated page store with fixed-size pages and read/write counters.

Pages hold arbitrary Python payloads plus a byte-size estimate so
capacity constraints (e.g. "R*-tree nodes are 1 KB, fan-out 50") can be
enforced the way a real pager would.  The store counts physical reads
and writes; the :class:`repro.storage.buffer.BufferPool` sits on top
and turns logical reads into physical ones only on cache misses.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Optional

from repro.errors import PageNotFoundError, StorageError
from repro.util.counters import CounterRegistry
from repro.util.validation import require_positive

#: Default page size, matching the paper's 1 KB R*-tree nodes.
DEFAULT_PAGE_SIZE = 1024


class Page:
    """A fixed-capacity page holding a Python payload.

    Attributes
    ----------
    page_id:
        Unique id assigned by the owning :class:`PageStore`.
    payload:
        Arbitrary object stored in the page (an R-tree node, a list of
        serialized pair records, ...).
    size_bytes:
        The caller-declared size of the payload; must not exceed the
        store's page size.
    """

    __slots__ = ("page_id", "payload", "size_bytes")

    def __init__(self, page_id: int, payload: Any, size_bytes: int) -> None:
        self.page_id = page_id
        self.payload = payload
        self.size_bytes = size_bytes

    def __repr__(self) -> str:
        return f"Page(id={self.page_id}, size={self.size_bytes})"


class PageStore:
    """Allocates, reads, writes and frees fixed-size pages.

    Parameters
    ----------
    page_size:
        Capacity of each page in (simulated) bytes.
    counters:
        Registry receiving ``page_reads`` / ``page_writes`` /
        ``pages_allocated`` counts.  A private registry is created when
        omitted.
    """

    def __init__(
        self,
        page_size: int = DEFAULT_PAGE_SIZE,
        counters: Optional[CounterRegistry] = None,
    ) -> None:
        require_positive(page_size, "page_size")
        self.page_size = page_size
        self.counters = counters if counters is not None else CounterRegistry()
        self._pages: Dict[int, Page] = {}
        self._next_id = 0

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------

    def allocate(self, payload: Any = None, size_bytes: int = 0) -> int:
        """Create a new page and return its id."""
        self._check_size(size_bytes)
        page_id = self._next_id
        self._next_id += 1
        self._pages[page_id] = Page(page_id, payload, size_bytes)
        self.counters.add("pages_allocated")
        self.counters.add("page_writes")
        return page_id

    def free(self, page_id: int) -> None:
        """Release a page; subsequent access raises PageNotFoundError."""
        if page_id not in self._pages:
            raise PageNotFoundError(page_id)
        del self._pages[page_id]
        self.counters.add("pages_freed")

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------

    def read(self, page_id: int) -> Page:
        """Physically read a page (counts one ``page_reads``)."""
        page = self._pages.get(page_id)
        if page is None:
            raise PageNotFoundError(page_id)
        self.counters.add("page_reads")
        return page

    def write(self, page_id: int, payload: Any, size_bytes: int) -> None:
        """Physically overwrite a page (counts one ``page_writes``)."""
        self._check_size(size_bytes)
        page = self._pages.get(page_id)
        if page is None:
            raise PageNotFoundError(page_id)
        page.payload = payload
        page.size_bytes = size_bytes
        self.counters.add("page_writes")

    def peek(self, page_id: int) -> Page:
        """Read a page without charging ``page_reads``.

        Used by the cursor snapshot machinery: saving a suspended
        queue must not perturb the I/O counters, or a resumed run
        would diverge from an uninterrupted one.
        """
        page = self._pages.get(page_id)
        if page is None:
            raise PageNotFoundError(page_id)
        return page

    def exists(self, page_id: int) -> bool:
        """True if the page is currently allocated."""
        return page_id in self._pages

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def page_count(self) -> int:
        """Number of currently allocated pages."""
        return len(self._pages)

    def total_bytes(self) -> int:
        """Sum of declared payload sizes over all allocated pages."""
        return sum(p.size_bytes for p in self._pages.values())

    def page_ids(self) -> Iterator[int]:
        """Iterate over the ids of all allocated pages."""
        return iter(list(self._pages))

    def _check_size(self, size_bytes: int) -> None:
        if size_bytes < 0:
            raise StorageError(f"negative payload size: {size_bytes}")
        if size_bytes > self.page_size:
            raise StorageError(
                f"payload of {size_bytes} bytes exceeds page size "
                f"{self.page_size}"
            )

    def __repr__(self) -> str:
        return (
            f"PageStore(pages={len(self._pages)}, "
            f"page_size={self.page_size})"
        )
