"""An LRU buffer pool over a :class:`repro.storage.pager.PageStore`.

The paper's experimental setup uses 256 KB of buffer space over 1 KB
nodes, i.e. 256 buffer frames.  Logical reads that hit the pool are
free; misses are forwarded to the page store (counting a physical read)
and may evict the least recently used frame.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.storage.pager import Page, PageStore
from repro.util.counters import CounterRegistry
from repro.util.validation import require_positive

#: Default number of frames: 256 KB buffer / 1 KB pages, as in the paper.
DEFAULT_CAPACITY = 256


class BufferPool:
    """Fixed-capacity LRU cache of pages.

    Parameters
    ----------
    store:
        The underlying page store.
    capacity:
        Number of page frames.
    counters:
        Registry receiving ``buffer_hits`` / ``buffer_misses`` counts.
        Defaults to the store's registry so a single registry sees the
        whole storage stack.
    """

    def __init__(
        self,
        store: PageStore,
        capacity: int = DEFAULT_CAPACITY,
        counters: Optional[CounterRegistry] = None,
    ) -> None:
        require_positive(capacity, "capacity")
        self.store = store
        self.capacity = capacity
        self.counters = counters if counters is not None else store.counters
        self._frames: "OrderedDict[int, Page]" = OrderedDict()

    def read(self, page_id: int) -> Page:
        """Logical page read: hit the pool or fall through to the store."""
        page = self._frames.get(page_id)
        if page is not None:
            self._frames.move_to_end(page_id)
            self.counters.add("buffer_hits")
            return page
        self.counters.add("buffer_misses")
        page = self.store.read(page_id)
        self._admit(page)
        return page

    def invalidate(self, page_id: int) -> None:
        """Drop a page from the pool (e.g. after it is freed)."""
        self._frames.pop(page_id, None)

    def clear(self) -> None:
        """Empty the pool (simulates a cold cache)."""
        self._frames.clear()

    def contains(self, page_id: int) -> bool:
        """True if the page currently occupies a frame (no LRU effect)."""
        return page_id in self._frames

    @property
    def used_frames(self) -> int:
        """Number of occupied frames."""
        return len(self._frames)

    def hit_ratio(self) -> float:
        """Fraction of logical reads served from the pool so far."""
        hits = self.counters.value("buffer_hits")
        misses = self.counters.value("buffer_misses")
        total = hits + misses
        return hits / total if total else 0.0

    def _admit(self, page: Page) -> None:
        if len(self._frames) >= self.capacity:
            self._frames.popitem(last=False)
        self._frames[page.page_id] = page

    def __repr__(self) -> str:
        return (
            f"BufferPool(frames={len(self._frames)}/{self.capacity}, "
            f"hit_ratio={self.hit_ratio():.2f})"
        )
