"""Saving and loading R-trees to/from a versioned JSON snapshot.

A downstream user should not have to rebuild an index on every run.
The snapshot stores the tree's parameters plus every node with its
entries; point payloads are stored inline (the paper's experimental
setup keeps objects directly in the leaves).  Non-point payloads are
snapshotted by their bounding rectangle and object id only -- the
standard "objects live in external storage" deployment -- and a
warning flag is recorded so loads are explicit about it.

The format is plain JSON (stdlib only, diff-able, versioned); page
ids are remapped on load, so snapshots are position-independent.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Type

from repro.errors import StorageError
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.rtree.base import RTreeBase
from repro.rtree.entry import BranchEntry, LeafEntry
from repro.rtree.guttman import GuttmanRTree
from repro.rtree.node import Node
from repro.rtree.rstar import RStarTree
from repro.util.counters import CounterRegistry

FORMAT_NAME = "repro-rtree"
FORMAT_VERSION = 1

_TREE_CLASSES: Dict[str, Type[RTreeBase]] = {
    "RStarTree": RStarTree,
    "GuttmanRTree": GuttmanRTree,
}


def _encode_entry(entry: Any) -> Dict[str, Any]:
    record: Dict[str, Any] = {
        "rect": [list(entry.rect.lo), list(entry.rect.hi)],
    }
    if isinstance(entry, BranchEntry):
        record["child"] = entry.child_id
        return record
    record["oid"] = entry.oid
    if isinstance(entry.obj, Point):
        record["point"] = list(entry.obj.coords)
    return record


def _decode_entry(record: Dict[str, Any]) -> Any:
    rect = Rect(record["rect"][0], record["rect"][1])
    if "child" in record:
        return BranchEntry(rect, record["child"])
    obj = Point(record["point"]) if "point" in record else None
    return LeafEntry(rect, record["oid"], obj)


def save_tree(tree: RTreeBase, path: str) -> None:
    """Write ``tree`` to ``path`` as a JSON snapshot."""
    nodes = []
    lossy = False
    stack = [tree.root_id]
    while stack:
        node = tree.read_node(stack.pop())
        encoded_entries = []
        for entry in node.entries:
            record = _encode_entry(entry)
            if (
                "child" not in record
                and "point" not in record
                and entry.obj is not None
            ):
                lossy = True
            encoded_entries.append(record)
            if isinstance(entry, BranchEntry):
                stack.append(entry.child_id)
        nodes.append({
            "id": node.page_id,
            "level": node.level,
            "entries": encoded_entries,
        })
    snapshot = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "tree_class": type(tree).__name__,
        "dim": tree.dim,
        "max_entries": tree.max_entries,
        "min_entries": tree.min_entries,
        "size": tree.size,
        "next_oid": tree._next_oid,
        "root": tree.root_id,
        "lossy_objects": lossy,
        "nodes": nodes,
    }
    with open(path, "w") as handle:
        json.dump(snapshot, handle)


def load_tree(
    path: str,
    counters: Optional[CounterRegistry] = None,
    **tree_kwargs: Any,
) -> RTreeBase:
    """Load a snapshot written by :func:`save_tree`.

    The concrete tree class, dimensions, and fan-out come from the
    snapshot; ``tree_kwargs`` may override runtime-only parameters
    (``buffer_pages``, ``page_size``).
    """
    with open(path) as handle:
        snapshot = json.load(handle)
    if snapshot.get("format") != FORMAT_NAME:
        raise StorageError(f"{path} is not a {FORMAT_NAME} snapshot")
    if snapshot.get("version") != FORMAT_VERSION:
        raise StorageError(
            f"unsupported snapshot version {snapshot.get('version')!r} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    tree_class = _TREE_CLASSES.get(snapshot["tree_class"])
    if tree_class is None:
        raise StorageError(
            f"unknown tree class {snapshot['tree_class']!r}"
        )

    tree = tree_class(
        dim=snapshot["dim"],
        max_entries=snapshot["max_entries"],
        min_entries=snapshot["min_entries"],
        counters=counters,
        **tree_kwargs,
    )
    # Drop the fresh empty root; rebuild all nodes with remapped ids.
    tree._free_node(tree.read_node(tree.root_id))

    id_map: Dict[int, int] = {}
    rebuilt: Dict[int, Node] = {}
    for record in snapshot["nodes"]:
        node = tree._new_node(level=record["level"])
        node.entries = [_decode_entry(e) for e in record["entries"]]
        id_map[record["id"]] = node.page_id
        rebuilt[node.page_id] = node
    for node in rebuilt.values():
        for entry in node.entries:
            if isinstance(entry, BranchEntry):
                try:
                    entry.child_id = id_map[entry.child_id]
                except KeyError:
                    raise StorageError(
                        f"snapshot references missing node "
                        f"{entry.child_id}"
                    ) from None
        tree._write_node(node)
    try:
        tree.root_id = id_map[snapshot["root"]]
    except KeyError:
        raise StorageError("snapshot root node is missing") from None
    tree.size = snapshot["size"]
    tree._next_oid = snapshot["next_oid"]
    return tree
