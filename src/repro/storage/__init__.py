"""Simulated disk storage: page store, LRU buffer pool, I/O accounting.

The paper measures *node I/O operations* on a machine with 1 KB R*-tree
nodes and a 256 KB buffer.  This package reproduces that accounting in
a platform-independent way: a :class:`PageStore` hands out fixed-size
pages, a :class:`BufferPool` caches them with LRU replacement, and
every miss is counted.  No real disk I/O is performed -- the point is
deterministic, reproducible counting of the same quantity the paper
reports.
"""

from repro.storage.pager import Page, PageStore
from repro.storage.buffer import BufferPool

__all__ = ["Page", "PageStore", "BufferPool"]
