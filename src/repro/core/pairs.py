"""The item/pair model of the incremental distance join.

A queue element holds a *pair* of items, one from each input tree.  An
item is a tree node, an object bounding rectangle (obr) whose object
still lives in external storage, or a resolved data object (paper
Section 2.2.1: with obrs in the leaves there are five pair kinds --
node/node, node/obr, obr/node, obr/obr, and object/object).

:class:`PairDistance` centralizes every distance computation between
items, dispatching to the right MINDIST / MAXDIST / MINMAXDIST bound
and charging the right performance counter, and enforces the paper's
*consistency* contract when debugging is enabled.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.errors import ConsistencyError
from repro.geometry.metrics import EUCLIDEAN, Metric
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.geometry.shapes import SpatialObject
from repro.rtree.base import RTreeBase
from repro.util.counters import CounterRegistry

#: Item kinds.
NODE = 0
OBR = 1
OBJ = 2

_KIND_NAMES = {NODE: "node", OBR: "obr", OBJ: "obj"}


class Item:
    """One side of a queue pair: a node, an obr, or a resolved object.

    Attributes
    ----------
    kind:
        One of :data:`NODE`, :data:`OBR`, :data:`OBJ`.
    rect:
        The item's (bounding) rectangle; degenerate for point objects.
    node_id, level:
        Page id and level for node items (level 0 = leaf).
    oid, obj:
        Object identifier and payload for obr/object items.  For an
        obr item ``obj`` holds the reference needed to resolve the
        object later (or ``None`` if only rectangles are indexed).
    """

    __slots__ = ("kind", "rect", "node_id", "level", "oid", "obj")

    def __init__(
        self,
        kind: int,
        rect: Rect,
        node_id: int = -1,
        level: int = -1,
        oid: int = -1,
        obj: Any = None,
    ) -> None:
        self.kind = kind
        self.rect = rect
        self.node_id = node_id
        self.level = level
        self.oid = oid
        self.obj = obj

    @property
    def is_node(self) -> bool:
        """True when this item is a tree node (expandable)."""
        return self.kind == NODE

    def identity(self) -> tuple:
        """Hashable identity for the estimator's hash table."""
        if self.kind == NODE:
            return ("n", self.node_id)
        return ("o", self.oid)

    def __repr__(self) -> str:
        if self.kind == NODE:
            return f"Item(node {self.node_id}, level {self.level})"
        return f"Item({_KIND_NAMES[self.kind]} oid={self.oid})"


def node_item(tree: RTreeBase, node_id: int, level: int, rect: Rect) -> Item:
    """Build a node item (``tree`` is unused but kept for symmetry)."""
    return Item(NODE, rect, node_id=node_id, level=level)


def object_item(rect: Rect, oid: int, obj: Any, resolved: bool) -> Item:
    """Build an object item; ``resolved`` selects OBJ vs OBR kind."""
    return Item(OBJ if resolved else OBR, rect, oid=oid, obj=obj)


class Pair:
    """A queue element: two items and their (lower-bound) distance."""

    __slots__ = ("item1", "item2", "distance")

    def __init__(self, item1: Item, item2: Item, distance: float) -> None:
        self.item1 = item1
        self.item2 = item2
        self.distance = distance

    @property
    def is_result(self) -> bool:
        """True for resolved object/object pairs (reportable)."""
        return self.item1.kind == OBJ and self.item2.kind == OBJ

    @property
    def is_obr_pair(self) -> bool:
        """True for obr/obr pairs (need object resolution first)."""
        return self.item1.kind == OBR and self.item2.kind == OBR

    @property
    def node_count(self) -> int:
        """How many of the two items are nodes (0, 1 or 2)."""
        return int(self.item1.is_node) + int(self.item2.is_node)

    def identity(self) -> tuple:
        """Hashable identity of the pair (estimator bookkeeping)."""
        return (self.item1.identity(), self.item2.identity())

    def __repr__(self) -> str:
        return (
            f"Pair({self.item1!r}, {self.item2!r}, d={self.distance:.4g})"
        )


class PairDistance:
    """Distance oracle for items, with counter charging.

    Parameters
    ----------
    metric:
        The point metric inducing all bounds.
    counters:
        Registry charged per the canonical counting rule: *exact*
        object/object distance evaluations (point metric distances,
        ``SpatialObject.distance_to``) cost one ``dist_calcs`` unit;
        every *rectangle bound* evaluation (MINDIST / MAXDIST /
        MINMAXDIST -- including the rectangle fallback of
        :meth:`object_distance` when only rectangles are indexed)
        costs one ``bound_calcs`` unit.  The batch kernels of
        :mod:`repro.kernels` charge the same units in bulk, one per
        bound computed, so both paths produce identical totals.
    exact_shapes:
        When True (default), resolved objects that are
        :class:`SpatialObject` instances use their exact geometric
        distance; Points always use the metric directly.  When False,
        object distance falls back to the bounding-rectangle distance
        (appropriate when only rectangles are indexed).
    check_consistency:
        When True, :meth:`check_child` raises :class:`ConsistencyError`
        if a derived pair's distance is smaller than its parent's --
        the run-time verification of the paper's consistency condition.
    """

    def __init__(
        self,
        metric: Metric = EUCLIDEAN,
        counters: Optional[CounterRegistry] = None,
        exact_shapes: bool = True,
        check_consistency: bool = False,
    ) -> None:
        self.metric = metric
        self.counters = counters if counters is not None else CounterRegistry()
        self.exact_shapes = exact_shapes
        self.check_consistency = check_consistency
        # Hot path: cache the counter objects so each charge is one
        # attribute access plus an add, not a registry lookup.
        self._dist_calcs = self.counters.counter("dist_calcs")
        self._bound_calcs = self.counters.counter("bound_calcs")

    # ------------------------------------------------------------------
    # object/object exact distance
    # ------------------------------------------------------------------

    def object_distance(self, item1: Item, item2: Item) -> float:
        """Exact distance between two (resolved or resolvable) objects."""
        o1, o2 = item1.obj, item2.obj
        if isinstance(o1, Point) and isinstance(o2, Point):
            self._dist_calcs.add()
            return self.metric.distance(o1, o2)
        if (
            self.exact_shapes
            and isinstance(o1, SpatialObject)
            and isinstance(o2, SpatialObject)
        ):
            self._dist_calcs.add()
            return o1.distance_to(o2)
        # Only bounding rectangles are available: this evaluates a
        # rectangle bound, not an exact object distance, and is charged
        # accordingly (the canonical counting rule; see class docstring).
        self._bound_calcs.add()
        return self.metric.mindist_rect_rect(item1.rect, item2.rect)

    # ------------------------------------------------------------------
    # MINDIST: the priority-queue key
    # ------------------------------------------------------------------

    def mindist(self, item1: Item, item2: Item) -> float:
        """Lower bound on the distance of any object pair generated
        from ``(item1, item2)``; exact for object/object pairs."""
        if item1.kind == OBJ and item2.kind == OBJ:
            return self.object_distance(item1, item2)
        self._bound_calcs.add()
        return self.metric.mindist_rect_rect(item1.rect, item2.rect)

    # ------------------------------------------------------------------
    # MAXDIST: the safe upper bound (valid for any node regions)
    # ------------------------------------------------------------------

    def maxdist(self, item1: Item, item2: Item) -> float:
        """Upper bound on the distance of *every* object pair generated
        from ``(item1, item2)``.

        Used by the distance-range test of Figure 5 (``MAXDIST >=
        Dmin``): pruning on it is safe because it never underestimates
        the largest generated distance.
        """
        if item1.kind == OBJ and item2.kind == OBJ:
            return self.object_distance(item1, item2)
        self._bound_calcs.add()
        return self.metric.maxdist_rect_rect(item1.rect, item2.rect)

    # ------------------------------------------------------------------
    # d_max for estimation: tight upper bound on generated pairs
    # ------------------------------------------------------------------

    def estimation_maxdist(self, item1: Item, item2: Item) -> float:
        """The d_max of Section 2.2.4: an upper bound on the distance of
        every object pair generated from the pair, using the tighter
        MINMAXDIST when both items are *minimal* bounding rectangles."""
        if item1.kind == OBJ and item2.kind == OBJ:
            return self.object_distance(item1, item2)
        self._bound_calcs.add()
        if item1.kind != NODE and item2.kind != NODE:
            return self.metric.minmaxdist_rect_rect(item1.rect, item2.rect)
        return self.metric.maxdist_rect_rect(item1.rect, item2.rect)

    # ------------------------------------------------------------------
    # debugging support
    # ------------------------------------------------------------------

    def check_child(self, parent: Pair, child_distance: float) -> None:
        """Raise unless ``child_distance >= parent.distance`` (within
        floating-point slack); no-op unless ``check_consistency``."""
        if not self.check_consistency:
            return
        # Slack scales with the larger of the two magnitudes: a parent
        # at distance 0.0 paired with children at coordinate scale 1e12
        # still gets slack proportional to the children's rounding
        # error, not the absolute 1e-9 the parent alone would give.
        slack = 1e-9 * max(1.0, abs(parent.distance), abs(child_distance))
        if child_distance < parent.distance - slack:
            raise ConsistencyError(
                f"child distance {child_distance} < parent distance "
                f"{parent.distance} for parent {parent!r}"
            )
