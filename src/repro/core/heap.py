"""Priority-queue structures: a pairing heap and an addressable max-queue.

The paper's implementation keeps the in-memory part of its hybrid
priority queue in a *pairing heap* (its reference [13]); this module
provides one.  It also provides :class:`AddressableMaxQueue`, the
``Q_M`` structure of Section 2.2.4: a max-priority queue over d_max
values combined with a hash table so that arbitrary entries can be
deleted when their pair is dequeued from the main queue (implemented
with lazy deletion).
"""

from __future__ import annotations

import heapq
from typing import (
    Any,
    Dict,
    Generic,
    Hashable,
    Iterable,
    List,
    Optional,
    Tuple,
    TypeVar,
)

K = TypeVar("K")
V = TypeVar("V")


class _PairingNode:
    """A node of the pairing heap: key, value, first child, next sibling."""

    __slots__ = ("key", "value", "child", "sibling")

    def __init__(self, key: Any, value: Any) -> None:
        self.key = key
        self.value = value
        self.child: Optional["_PairingNode"] = None
        self.sibling: Optional["_PairingNode"] = None


class PairingHeap(Generic[K, V]):
    """A min-ordered pairing heap.

    Supports O(1) amortized ``push``/``find-min``/``meld`` and
    O(log n) amortized ``pop``.  Keys may be any totally ordered
    values; the join uses tuples ``(distance, tie-break...)``.

    Examples
    --------
    >>> h = PairingHeap()
    >>> for k in (5, 1, 3):
    ...     h.push(k, str(k))
    >>> h.pop()
    (1, '1')
    >>> h.peek()
    (3, '3')
    """

    def __init__(self) -> None:
        self._root: Optional[_PairingNode] = None
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._root is not None

    def push(self, key: K, value: V) -> None:
        """Insert a (key, value) item."""
        node = _PairingNode(key, value)
        self._root = self._meld(self._root, node)
        self._size += 1

    def push_many(self, items: Iterable[Tuple[K, V]]) -> None:
        """Insert items in iteration order.

        Produces exactly the heap structure (hence pop order, equal
        keys included) of calling :meth:`push` per item; the meld of a
        singleton against the root is just inlined, which saves the
        per-item call overhead on bulk enqueues.
        """
        root = self._root
        count = 0
        for key, value in items:
            node = _PairingNode(key, value)
            if root is None:
                root = node
            elif key < root.key:
                # _meld(root, node) with the swap taken: the old root
                # becomes the new node's first (only) child.
                root.sibling = None
                node.child = root
                root = node
            else:
                node.sibling = root.child
                root.child = node
            count += 1
        self._root = root
        self._size += count

    def peek(self) -> Tuple[K, V]:
        """The minimum item without removing it."""
        if self._root is None:
            raise IndexError("peek on empty heap")
        return self._root.key, self._root.value

    def pop(self) -> Tuple[K, V]:
        """Remove and return the minimum item."""
        root = self._root
        if root is None:
            raise IndexError("pop on empty heap")
        self._root = self._merge_pairs(root.child)
        self._size -= 1
        return root.key, root.value

    def meld(self, other: "PairingHeap[K, V]") -> None:
        """Destructively absorb ``other`` (which is left empty)."""
        self._root = self._meld(self._root, other._root)
        self._size += other._size
        other._root = None
        other._size = 0

    def clear(self) -> None:
        """Discard all items."""
        self._root = None
        self._size = 0

    def items(self) -> List[Tuple[K, V]]:
        """All (key, value) items in internal (arbitrary) order.

        Non-destructive: the heap structure is untouched.  Used by the
        queue snapshot machinery -- re-pushing the returned items into
        a fresh heap reproduces the same *pop order* (keys are totally
        ordered), though not necessarily the same internal shape.
        """
        out: List[Tuple[K, V]] = []
        stack: List[_PairingNode] = []
        if self._root is not None:
            stack.append(self._root)
        while stack:
            node = stack.pop()
            out.append((node.key, node.value))
            if node.sibling is not None:
                stack.append(node.sibling)
            if node.child is not None:
                stack.append(node.child)
        return out

    @staticmethod
    def _meld(
        a: Optional[_PairingNode], b: Optional[_PairingNode]
    ) -> Optional[_PairingNode]:
        if a is None:
            return b
        if b is None:
            return a
        if b.key < a.key:
            a, b = b, a
        # b becomes the first child of a.
        b.sibling = a.child
        a.child = b
        return a

    @classmethod
    def _merge_pairs(
        cls, node: Optional[_PairingNode]
    ) -> Optional[_PairingNode]:
        # Two-pass pairing, iterative to avoid deep recursion on long
        # sibling chains.
        if node is None:
            return None
        # First pass: meld siblings in pairs left to right.
        melded: List[_PairingNode] = []
        current: Optional[_PairingNode] = node
        while current is not None:
            first = current
            second = first.sibling
            if second is None:
                first.sibling = None
                melded.append(first)
                break
            nxt = second.sibling
            first.sibling = None
            second.sibling = None
            merged = cls._meld(first, second)
            assert merged is not None
            melded.append(merged)
            current = nxt
        # Second pass: meld right to left.
        result = melded.pop()
        while melded:
            result = cls._meld(melded.pop(), result)
        return result


class BinaryHeap(Generic[K, V]):
    """A ``heapq``-backed binary heap with the same interface as
    :class:`PairingHeap`, for the heap-structure ablation benchmark."""

    def __init__(self) -> None:
        self._heap: List[Tuple[K, V]] = []

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, key: K, value: V) -> None:
        heapq.heappush(self._heap, (key, value))

    def peek(self) -> Tuple[K, V]:
        if not self._heap:
            raise IndexError("peek on empty heap")
        return self._heap[0]

    def pop(self) -> Tuple[K, V]:
        if not self._heap:
            raise IndexError("pop on empty heap")
        return heapq.heappop(self._heap)

    def clear(self) -> None:
        """Discard all items."""
        self._heap.clear()

    def items(self) -> List[Tuple[K, V]]:
        """All (key, value) items in internal (arbitrary) order."""
        return list(self._heap)


class AddressableMaxQueue(Generic[V]):
    """Max-priority queue over float priorities with delete-by-key.

    This is the paper's ``Q_M``: a priority queue organized on d_max
    values to find the largest, plus a hash table to locate and delete
    the entry of a particular pair when it leaves the main queue.
    Deletion is implemented lazily: the hash table is authoritative and
    stale heap entries are skipped on ``pop_max``/``peek_max``.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Hashable]] = []
        self._live: Dict[Hashable, Tuple[float, V]] = {}
        self._counter = 0

    def __len__(self) -> int:
        return len(self._live)

    def __bool__(self) -> bool:
        return bool(self._live)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._live

    def get(self, key: Hashable) -> Optional[Tuple[float, V]]:
        """The (priority, value) stored under ``key``, or None."""
        return self._live.get(key)

    def insert(self, key: Hashable, priority: float, value: V) -> None:
        """Insert or replace the entry stored under ``key``."""
        self._live[key] = (priority, value)
        self._counter += 1
        heapq.heappush(self._heap, (-priority, self._counter, key))

    def delete(self, key: Hashable) -> bool:
        """Delete the entry under ``key``; True if it existed."""
        return self._live.pop(key, None) is not None

    def _skim(self) -> None:
        # Drop stale heap tops (deleted or replaced entries).
        while self._heap:
            neg_priority, __, key = self._heap[0]
            live = self._live.get(key)
            if live is not None and live[0] == -neg_priority:
                return
            heapq.heappop(self._heap)

    def peek_max(self) -> Tuple[Hashable, float, V]:
        """The (key, priority, value) with the largest priority."""
        self._skim()
        if not self._heap:
            raise IndexError("peek on empty queue")
        neg_priority, __, key = self._heap[0]
        priority, value = self._live[key]
        return key, priority, value

    def pop_max(self) -> Tuple[Hashable, float, V]:
        """Remove and return the entry with the largest priority."""
        key, priority, value = self.peek_max()
        heapq.heappop(self._heap)
        del self._live[key]
        return key, priority, value

    def items(self):
        """Iterate over live (key, (priority, value)) entries."""
        return self._live.items()

    # ------------------------------------------------------------------
    # suspendable-cursor support
    # ------------------------------------------------------------------

    def state(self) -> dict:
        """A picklable snapshot of the queue, including stale heap
        entries and the insertion counter -- the counter breaks
        priority ties, so reproducing pop order exactly requires
        carrying the lazy-deletion structure verbatim."""
        return {
            "heap": list(self._heap),
            "live": dict(self._live),
            "counter": self._counter,
        }

    def restore_state(self, state: dict) -> None:
        """Overwrite this queue with a :meth:`state` snapshot."""
        self._heap = list(state["heap"])
        self._live = dict(state["live"])
        self._counter = state["counter"]
