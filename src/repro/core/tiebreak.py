"""Priority-queue key construction and tie-breaking policies.

The queue is ordered primarily by pair distance.  How ties are broken
determines the traversal pattern (paper Section 2.2.2): the goal is to
produce result pairs as soon as possible, so pairs containing objects
or object bounding rectangles order ahead of pairs of nodes, and among
node pairs the *depth-first* policy gives priority to deeper nodes
while *breadth-first* gives it to shallower ones.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.pairs import Pair

#: Tie-break policy names.
DEPTH_FIRST = "depth_first"
BREADTH_FIRST = "breadth_first"

POLICIES = (DEPTH_FIRST, BREADTH_FIRST)


class KeyMaker:
    """Builds totally ordered queue keys for pairs.

    A key is the tuple ``(signed distance, kind rank, level key, seq
    key)``:

    - *kind rank*: 0 for resolved object/object pairs, 1 for pairs of
      object bounding rectangles, 2 for pairs with one node, 3 for
      node/node pairs -- result-bearing pairs surface first at equal
      distance;
    - *level key*: the sum of node levels (leaves are level 0), negated
      for breadth-first so that shallower pairs win ties;
    - *seq key*: a monotone counter making the order total; negated for
      depth-first so that, all else equal, the most recently generated
      (deepest) pair is processed next.

    Parameters
    ----------
    tie_break:
        :data:`DEPTH_FIRST` or :data:`BREADTH_FIRST`.
    descending:
        Order by decreasing distance (the reverse/farthest-first
        variant of Section 2.2.5); implemented by negating the distance
        component.
    """

    def __init__(
        self, tie_break: str = DEPTH_FIRST, descending: bool = False
    ) -> None:
        if tie_break not in POLICIES:
            raise ValueError(
                f"unknown tie-break policy {tie_break!r}; "
                f"expected one of {POLICIES}"
            )
        self.tie_break = tie_break
        self.descending = descending
        # A plain integer (not itertools.count) so a suspended join can
        # snapshot and restore the sequence position -- the seq
        # component is part of every queue key, and resumed runs must
        # generate byte-identical keys to preserve tie ordering.
        self._seq = 0

    def key(self, pair: Pair, distance: float) -> Tuple:
        """The queue key for ``pair`` ordered at ``distance``.

        ``distance`` is passed separately because the reverse variant
        keys unresolved pairs by their d_max bound rather than by
        ``pair.distance``.
        """
        if pair.is_result:
            rank = 0
        elif pair.node_count == 0:
            rank = 1
        else:
            rank = 1 + pair.node_count
        level_sum = 0
        if pair.item1.is_node:
            level_sum += pair.item1.level
        if pair.item2.is_node:
            level_sum += pair.item2.level
        seq = self._seq
        self._seq += 1
        signed_distance = -distance if self.descending else distance
        if self.tie_break == DEPTH_FIRST:
            return (signed_distance, rank, level_sum, -seq)
        return (signed_distance, rank, -level_sum, seq)

    def key_batch(self, first: Pair, distances) -> list:
        """Keys for a batch of pairs sharing ``first``'s shape.

        Callers guarantee every pair in the batch has the same kind
        and level structure as ``first`` (true for the candidates of
        one node expansion: the child kind and level are uniform
        across a node's entries, and the partner item is fixed), so
        the rank and level components are computed once and only the
        distance and sequence number vary.  Bit-identical to calling
        :meth:`key` on each pair in order -- including the sequence
        numbers consumed -- at a fraction of the per-pair cost.
        """
        if first.is_result:
            rank = 0
        elif first.node_count == 0:
            rank = 1
        else:
            rank = 1 + first.node_count
        level_sum = 0
        if first.item1.is_node:
            level_sum += first.item1.level
        if first.item2.is_node:
            level_sum += first.item2.level
        seq = self._seq
        self._seq = seq + len(distances)
        if self.descending:
            if self.tie_break == DEPTH_FIRST:
                return [(-d, rank, level_sum, -(seq + i))
                        for i, d in enumerate(distances)]
            return [(-d, rank, -level_sum, seq + i)
                    for i, d in enumerate(distances)]
        if self.tie_break == DEPTH_FIRST:
            return [(d, rank, level_sum, -(seq + i))
                    for i, d in enumerate(distances)]
        return [(d, rank, -level_sum, seq + i)
                for i, d in enumerate(distances)]

    @property
    def seq(self) -> int:
        """The next sequence number :meth:`key` will consume."""
        return self._seq

    def restore_seq(self, value: int) -> None:
        """Reposition the sequence counter (cursor resume)."""
        self._seq = int(value)

    @staticmethod
    def distance_of(key: Tuple) -> float:
        """Recover the unsigned distance from a key (sign-independent)."""
        return abs(key[0])
