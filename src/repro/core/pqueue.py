"""Pair priority queues: pure-memory and the paper's hybrid memory/disk
three-tier scheme (Section 3.2).

The hybrid queue keeps pairs with distance below ``D1`` in a pairing
heap, pairs in ``[D1, D2)`` in an unorganized in-memory list, and
everything else on (simulated) disk in linked page lists, one list per
distance band ``[k*DT, (k+1)*DT)``.  When the heap runs dry the list is
heapified, ``D1``/``D2`` advance by ``DT``, and the next disk band is
pulled into the list.  All disk traffic is counted (``pq_disk_writes``,
``pq_disk_reads``, plus the page store's ``page_reads``/``page_writes``).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Any, Dict, List, Optional, Tuple, Type

from repro.core.heap import PairingHeap
from repro.storage.pager import PageStore
from repro.util.counters import CounterRegistry
from repro.util.obs import NULL_OBSERVER, Observer
from repro.util.validation import require_positive

#: Simulated size of one serialized pair record on a queue page.
PAIR_RECORD_BYTES = 64

#: Cap on band indices: ``distance / dt`` can overflow to infinity
#: when DT is subnormal, and any quotient this large is already far
#: past every band the cursor will visit individually.
_MAX_BAND = 2 ** 62

#: Micro-unit scale used to record the calibrated ``D_T`` in the
#: integer counter registry without truncating sub-unit values.
DT_MICRO_SCALE = 1_000_000


class PairQueue(ABC):
    """Interface shared by the queue implementations.

    Keys are tuples whose first component is the (signed) distance;
    the remaining components implement tie-breaking.
    """

    @abstractmethod
    def push(self, key: Tuple, value: Any) -> None:
        """Insert an element."""

    def push_many(self, items) -> None:
        """Insert ``(key, value)`` elements in iteration order.

        Semantically identical to calling :meth:`push` one by one --
        subclasses may only batch *internal* work, never change the
        accounting (the hybrid queue's per-push band/disk counters are
        part of the join's bit-identity contract).  Iteration order
        matters: it fixes the tie-break sequence of equal keys.
        """
        for key, value in items:
            self.push(key, value)

    @abstractmethod
    def pop(self) -> Tuple[Tuple, Any]:
        """Remove and return the minimum element."""

    @abstractmethod
    def peek(self) -> Tuple[Tuple, Any]:
        """Return the minimum element without removing it."""

    @abstractmethod
    def __len__(self) -> int:
        """Total number of queued elements (all tiers)."""

    def __bool__(self) -> bool:
        return len(self) > 0

    def head_distance(self) -> Optional[float]:
        """The distance component of the smallest queued key, or a
        certified lower bound on it; ``None`` when empty.

        Unlike :meth:`peek` this is a pure *probe*: it never promotes
        tiers, reads disk pages, or charges counters, so progress
        reporters can call it every quantum without perturbing the
        join's bit-identity counter contract.  When the true head
        lives on the disk tier only its band is known, hence "lower
        bound".  Keys carry signed distances (negated in descending
        mode); callers undo the sign themselves.
        """
        raise NotImplementedError

    def occupancy(self) -> Dict[str, int]:
        """Element counts per tier (``total`` / ``memory`` / ``disk``,
        plus implementation-specific detail).  Pure probe: no tier
        mutation, no counters."""
        return {"total": len(self), "memory": len(self), "disk": 0}


class MemoryPairQueue(PairQueue):
    """A single in-memory heap; the paper's "Memory" configuration.

    Parameters
    ----------
    heap_class:
        :class:`PairingHeap` (default, as in the paper) or
        :class:`BinaryHeap` for the ablation benchmark.
    """

    def __init__(self, heap_class: Type = PairingHeap) -> None:
        self._heap = heap_class()

    def push(self, key: Tuple, value: Any) -> None:
        self._heap.push(key, value)

    def push_many(self, items) -> None:
        heap_bulk = getattr(self._heap, "push_many", None)
        if heap_bulk is not None:
            heap_bulk(items)
            return
        push = self._heap.push
        for key, value in items:
            push(key, value)

    def pop(self) -> Tuple[Tuple, Any]:
        return self._heap.pop()

    def peek(self) -> Tuple[Tuple, Any]:
        return self._heap.peek()

    def __len__(self) -> int:
        return len(self._heap)

    def head_distance(self) -> Optional[float]:
        if not self._heap:
            return None
        return self._heap.peek()[0][0]

    # ------------------------------------------------------------------
    # suspendable-cursor support
    # ------------------------------------------------------------------

    def state(self) -> dict:
        """A picklable snapshot of the queue contents.

        Heap items are captured in internal order; keys are totally
        ordered (the tie-break seq makes them so), so re-pushing into a
        fresh heap reproduces the identical pop order.
        """
        return {"kind": "memory", "items": self._heap.items()}

    @classmethod
    def from_state(
        cls,
        state: dict,
        *,
        heap_class: Type = PairingHeap,
        counters: Optional[CounterRegistry] = None,
        observer: Optional[Observer] = None,
        store: Optional[PageStore] = None,
    ) -> "MemoryPairQueue":
        """Rebuild a queue from a :meth:`state` snapshot.

        The extra keyword arguments mirror the other queues' signatures
        so :func:`queue_from_state` can dispatch uniformly; this queue
        only uses ``heap_class``.
        """
        queue = cls(heap_class=heap_class)
        for key, value in state["items"]:
            queue._heap.push(key, value)
        return queue


class HybridPairQueue(PairQueue):
    """The three-tier memory/disk queue of Section 3.2.

    Parameters
    ----------
    dt:
        The fixed distance increment ``D_T``.  ``D1`` and ``D2`` start
        at ``DT`` and ``2*DT`` and advance by ``DT`` on each refill.
        The paper chooses ``D_T`` per data set; see
        :func:`repro.bench.workloads.suggest_dt` for the heuristic this
        library provides.
    store:
        Page store for the disk tier (a private one is created when
        omitted).
    counters:
        Registry charged with ``pq_disk_writes`` / ``pq_disk_reads``
        per record moved, and observing ``pq_heap_size``.
    heap_class:
        Heap used for tier 1.
    observer:
        Optional :class:`~repro.util.obs.Observer`; when enabled,
        queue refills are timed under the ``pq.refill`` span and band
        loads are logged as events.
    """

    def __init__(
        self,
        dt: float,
        store: Optional[PageStore] = None,
        counters: Optional[CounterRegistry] = None,
        heap_class: Type = PairingHeap,
        observer: Optional[Observer] = None,
    ) -> None:
        require_positive(dt, "dt")
        self.dt = float(dt)
        self.counters = counters if counters is not None else CounterRegistry()
        self.obs = observer if observer is not None else NULL_OBSERVER
        self.store = store if store is not None else PageStore()
        self._heap = heap_class()
        self._list: List[Tuple[Tuple, Any]] = []
        # The band cursor is the single source of truth for the tier
        # thresholds: the heap holds bands below the cursor, the
        # unorganized list holds exactly the cursor band, and disk
        # bands are strictly above it.  Routing purely by band index
        # (never by accumulated float thresholds) keeps the three tiers
        # exactly consistent -- floor(d / dt) is monotone in d, so
        # band-by-band promotion preserves global distance order.
        self._cursor = 1  # D1 = cursor * DT, D2 = (cursor + 1) * DT
        self._bands: Dict[int, List[int]] = {}
        self._open_page: Dict[int, int] = {}
        self._disk_records = 0
        self._page_capacity = max(1, self.store.page_size // PAIR_RECORD_BYTES)

    @property
    def _d1(self) -> float:
        return self._cursor * self.dt

    @property
    def _d2(self) -> float:
        return (self._cursor + 1) * self.dt

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    def push(self, key: Tuple, value: Any) -> None:
        band = self._band_of(key[0])
        if band < self._cursor:
            self._heap.push(key, value)
            self.counters.observe("pq_heap_size", len(self._heap))
        elif band == self._cursor:
            self._list.append((key, value))
        else:
            self._push_disk(band, (key, value))

    def _band_of(self, distance: float) -> int:
        quotient = distance / self.dt
        if quotient >= _MAX_BAND:
            # A tiny DT (the adaptive queue can calibrate a subnormal
            # one from near-duplicate inputs) overflows the division to
            # infinity even though both operands are finite.  Every
            # such pair lies beyond any band the cursor can reach, so
            # collapse the tail into one final disk band; the heap
            # restores order within a band at promotion time.
            return _MAX_BAND
        return int(math.floor(quotient))

    def _push_disk(self, band: int, record: Tuple[Tuple, Any]) -> None:
        page_id = self._open_page.get(band)
        if page_id is None:
            page_id = self.store.allocate([], 0)
            self._open_page[band] = page_id
            self._bands.setdefault(band, []).append(page_id)
        page = self.store.read(page_id)
        records: List[Tuple[Tuple, Any]] = page.payload
        records.append(record)
        self.store.write(
            page_id, records, len(records) * PAIR_RECORD_BYTES
        )
        if len(records) >= self._page_capacity:
            # Page full: next append opens a fresh page in the band's
            # linked list.
            del self._open_page[band]
        self._disk_records += 1
        self.counters.add("pq_disk_writes")

    # ------------------------------------------------------------------
    # retrieval
    # ------------------------------------------------------------------

    def pop(self) -> Tuple[Tuple, Any]:
        self._ensure_head()
        if not self._heap:
            raise IndexError("pop on empty queue")
        return self._heap.pop()

    def peek(self) -> Tuple[Tuple, Any]:
        self._ensure_head()
        if not self._heap:
            raise IndexError("peek on empty queue")
        return self._heap.peek()

    def _ensure_head(self) -> None:
        if self._heap or not (self._list or self._disk_records):
            return
        if self.obs.enabled:
            with self.obs.span("pq.refill"):
                self._refill()
        else:
            self._refill()

    def _refill(self) -> None:
        while not self._heap and (self._list or self._disk_records):
            # Promote the unorganized list into the heap...
            for key, value in self._list:
                self._heap.push(key, value)
            self._list.clear()
            self.counters.observe("pq_heap_size", len(self._heap))
            # ... advance the thresholds ...
            self._cursor += 1
            # ... and pull the next disk band into the list.
            self._load_band(self._cursor)
            if not self._heap and not self._list and self._disk_records:
                # The next non-empty band may be far away; jump to it.
                self._cursor = min(self._bands)
                self._load_band(self._cursor)

    def _load_band(self, band: int) -> None:
        page_ids = self._bands.pop(band, None)
        self._open_page.pop(band, None)
        if not page_ids:
            return
        if self.obs.enabled:
            self.obs.event(
                "pq.load_band", label=f"band={band}",
                value=float(len(page_ids)),
            )
        for page_id in page_ids:
            page = self.store.read(page_id)
            records: List[Tuple[Tuple, Any]] = page.payload
            self._list.extend(records)
            self._disk_records -= len(records)
            self.counters.add("pq_disk_reads", len(records))
            self.store.free(page_id)

    # ------------------------------------------------------------------
    # sizing
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._heap) + len(self._list) + self._disk_records

    def memory_size(self) -> int:
        """Number of elements held in memory (tiers 1 and 2)."""
        return len(self._heap) + len(self._list)

    def disk_size(self) -> int:
        """Number of elements currently on the disk tier."""
        return self._disk_records

    def head_distance(self) -> Optional[float]:
        if self._heap:
            return self._heap.peek()[0][0]
        if self._list:
            # The unorganized list is exactly the cursor band; scanning
            # it is bounded by the band population and touches no disk.
            return min(key[0] for key, _value in self._list)
        if self._disk_records:
            # Only the head's band is known without reading pages:
            # every key in band b satisfies b*DT <= key[0] < (b+1)*DT,
            # so the band floor is a certified lower bound.
            return min(self._bands) * self.dt
        return None

    def occupancy(self) -> Dict[str, int]:
        return {
            "total": len(self),
            "memory": self.memory_size(),
            "disk": self._disk_records,
            "heap": len(self._heap),
            "list": len(self._list),
            "bands": len(self._bands),
        }

    def __repr__(self) -> str:
        return (
            f"HybridPairQueue(heap={len(self._heap)}, list={len(self._list)},"
            f" disk={self._disk_records}, d1={self._d1:g}, d2={self._d2:g})"
        )

    # ------------------------------------------------------------------
    # suspendable-cursor support
    # ------------------------------------------------------------------

    def state(self) -> dict:
        """A picklable snapshot of all three tiers.

        Disk-band page payloads are captured with uncounted
        :meth:`~repro.storage.pager.PageStore.peek` reads, so taking a
        snapshot is invisible to the I/O counters.  The band cursor,
        the unorganized list, and the per-band open/closed page
        structure are all carried so a restore reproduces the exact
        refill and promotion sequence of an uninterrupted run.
        """
        bands = []
        for band in sorted(self._bands):
            pages = [
                list(self.store.peek(page_id).payload)
                for page_id in self._bands[band]
            ]
            bands.append((band, pages, band in self._open_page))
        return {
            "kind": "hybrid",
            "dt": self.dt,
            "cursor": self._cursor,
            "heap": self._heap.items(),
            "list": list(self._list),
            "bands": bands,
            "disk_records": self._disk_records,
        }

    @classmethod
    def from_state(
        cls,
        state: dict,
        *,
        heap_class: Type = PairingHeap,
        counters: Optional[CounterRegistry] = None,
        observer: Optional[Observer] = None,
        store: Optional[PageStore] = None,
    ) -> "HybridPairQueue":
        """Rebuild a queue from a :meth:`state` snapshot.

        Pages are re-allocated directly in the store (never through
        :meth:`push`), so no ``pq_disk_writes`` or ``queue_inserts``
        are charged: with a shared counter registry the restored run's
        counters continue exactly where the suspended run left off.
        """
        queue = cls(
            dt=state["dt"],
            store=store,
            counters=counters,
            heap_class=heap_class,
            observer=observer,
        )
        for key, value in state["heap"]:
            queue._heap.push(key, value)
        queue._list = list(state["list"])
        queue._cursor = state["cursor"]
        queue._disk_records = state["disk_records"]
        for band, pages, has_open in state["bands"]:
            page_ids = []
            for records in pages:
                records = list(records)
                page_id = queue.store.allocate(
                    records, len(records) * PAIR_RECORD_BYTES
                )
                page_ids.append(page_id)
            queue._bands[band] = page_ids
            if has_open and page_ids:
                # Invariant: a band's open page is always the last page
                # in its list (created together, dropped from the open
                # map when full).
                queue._open_page[band] = page_ids[-1]
        return queue


class AdaptiveHybridPairQueue(PairQueue):
    """A hybrid queue that chooses ``D_T`` from its own early traffic.

    The paper picks ``D_T`` empirically per data set and names
    "developing a way of choosing D_T based on the input relations, or
    finding some other dynamic method" as future work (Section 3.2).
    This implementation realizes the dynamic method: the first
    ``calibration_size`` pushes are buffered in a plain heap while
    their distance distribution is observed; ``D_T`` is then set so
    that roughly ``target_heap_fraction`` of the observed distances
    fall inside the first band, the buffered elements are re-routed
    through a regular :class:`HybridPairQueue`, and everything after
    that proceeds three-tiered.

    The early pushes of a distance join are dominated by near pairs
    (the roots overlap), so the observed quantile tracks the hot
    prefix the heap should own -- the quantity the paper tuned by
    hand.
    """

    def __init__(
        self,
        calibration_size: int = 256,
        target_heap_fraction: float = 0.25,
        store: Optional[PageStore] = None,
        counters: Optional[CounterRegistry] = None,
        heap_class: Type = PairingHeap,
        observer: Optional[Observer] = None,
    ) -> None:
        require_positive(calibration_size, "calibration_size")
        if not 0.0 < target_heap_fraction < 1.0:
            raise ValueError(
                "target_heap_fraction must be in (0, 1), got "
                f"{target_heap_fraction!r}"
            )
        self.calibration_size = calibration_size
        self.target_heap_fraction = target_heap_fraction
        self.counters = counters if counters is not None else CounterRegistry()
        self.obs = observer if observer is not None else NULL_OBSERVER
        self._store = store
        self._heap_class = heap_class
        self._warmup = heap_class()
        self._observed: List[float] = []
        self._inner: Optional[HybridPairQueue] = None

    @property
    def dt(self) -> Optional[float]:
        """The calibrated ``D_T`` (None until calibration finishes)."""
        return self._inner.dt if self._inner is not None else None

    def _calibrate(self) -> None:
        distances = sorted(self._observed)
        index = max(
            0,
            min(
                len(distances) - 1,
                int(len(distances) * self.target_heap_fraction),
            ),
        )
        chosen = distances[index]
        positive = [d for d in distances if d > 0.0]
        if chosen <= 0.0:
            chosen = positive[0] if positive else 1.0
        self._inner = HybridPairQueue(
            dt=chosen,
            store=self._store,
            counters=self.counters,
            heap_class=self._heap_class,
            observer=self.obs if self.obs.enabled else None,
        )
        # Record the calibrated D_T losslessly.  The integer registry
        # gets it in micro-units (a plain observe(int(dt)) truncates
        # any sub-unit D_T -- the common case on unit-square data --
        # to 0); the observer gets the exact float as a gauge.
        self.counters.counter("pq_adaptive_dt_micro").observe(
            max(1, int(round(chosen * DT_MICRO_SCALE)))
        )
        if self.obs.enabled:
            self.obs.gauge("pq_adaptive_dt", chosen)
            self.obs.event(
                "pq.calibrated", label=f"dt={chosen:g}", value=chosen
            )
        while self._warmup:
            key, value = self._warmup.pop()
            self._inner.push(key, value)
        self._observed = []

    def push(self, key: Tuple, value: Any) -> None:
        if self._inner is not None:
            self._inner.push(key, value)
            return
        self._warmup.push(key, value)
        self._observed.append(abs(key[0]))
        if len(self._observed) >= self.calibration_size:
            self._calibrate()

    def pop(self) -> Tuple[Tuple, Any]:
        if self._inner is not None:
            return self._inner.pop()
        return self._warmup.pop()

    def peek(self) -> Tuple[Tuple, Any]:
        if self._inner is not None:
            return self._inner.peek()
        return self._warmup.peek()

    def __len__(self) -> int:
        if self._inner is not None:
            return len(self._inner)
        return len(self._warmup)

    def memory_size(self) -> int:
        """In-memory element count (all of it during calibration)."""
        if self._inner is not None:
            return self._inner.memory_size()
        return len(self._warmup)

    def disk_size(self) -> int:
        """Elements on the disk tier (0 during calibration)."""
        if self._inner is not None:
            return self._inner.disk_size()
        return 0

    def head_distance(self) -> Optional[float]:
        if self._inner is not None:
            return self._inner.head_distance()
        if not self._warmup:
            return None
        return self._warmup.peek()[0][0]

    def occupancy(self) -> Dict[str, int]:
        if self._inner is not None:
            return self._inner.occupancy()
        size = len(self._warmup)
        return {
            "total": size, "memory": size, "disk": 0,
            "heap": size, "list": 0, "bands": 0,
        }

    def __repr__(self) -> str:
        if self._inner is None:
            return (
                f"AdaptiveHybridPairQueue(calibrating, "
                f"{len(self._warmup)}/{self.calibration_size})"
            )
        return f"AdaptiveHybridPairQueue(dt={self._inner.dt:g})"

    # ------------------------------------------------------------------
    # suspendable-cursor support
    # ------------------------------------------------------------------

    def state(self) -> dict:
        """A picklable snapshot covering both phases.

        During warmup the buffered items *and* the observed distance
        list are captured, so a resumed queue calibrates to the exact
        same ``D_T`` at the exact same push.  After calibration the
        inner hybrid queue's snapshot is nested.
        """
        if self._inner is None:
            return {
                "kind": "adaptive",
                "phase": "warmup",
                "calibration_size": self.calibration_size,
                "target_heap_fraction": self.target_heap_fraction,
                "warmup": self._warmup.items(),
                "observed": list(self._observed),
            }
        return {
            "kind": "adaptive",
            "phase": "inner",
            "calibration_size": self.calibration_size,
            "target_heap_fraction": self.target_heap_fraction,
            "inner": self._inner.state(),
        }

    @classmethod
    def from_state(
        cls,
        state: dict,
        *,
        heap_class: Type = PairingHeap,
        counters: Optional[CounterRegistry] = None,
        observer: Optional[Observer] = None,
        store: Optional[PageStore] = None,
    ) -> "AdaptiveHybridPairQueue":
        """Rebuild a queue from a :meth:`state` snapshot.

        Never re-runs calibration: a post-calibration snapshot restores
        the inner queue directly, so ``pq_adaptive_dt_micro`` is not
        observed a second time.
        """
        queue = cls(
            calibration_size=state["calibration_size"],
            target_heap_fraction=state["target_heap_fraction"],
            store=store,
            counters=counters,
            heap_class=heap_class,
            observer=observer,
        )
        if state["phase"] == "warmup":
            for key, value in state["warmup"]:
                queue._warmup.push(key, value)
            queue._observed = list(state["observed"])
        else:
            queue._inner = HybridPairQueue.from_state(
                state["inner"],
                heap_class=heap_class,
                counters=queue.counters,
                observer=queue.obs if queue.obs.enabled else None,
                store=store,
            )
        return queue


#: Snapshot ``kind`` -> queue class, for :func:`queue_from_state`.
_QUEUE_KINDS: Dict[str, Type[PairQueue]] = {
    "memory": MemoryPairQueue,
    "hybrid": HybridPairQueue,
    "adaptive": AdaptiveHybridPairQueue,
}


def queue_from_state(
    state: dict,
    *,
    heap_class: Type = PairingHeap,
    counters: Optional[CounterRegistry] = None,
    observer: Optional[Observer] = None,
    store: Optional[PageStore] = None,
) -> PairQueue:
    """Rebuild any pair queue from its :meth:`state` snapshot."""
    try:
        queue_class = _QUEUE_KINDS[state["kind"]]
    except KeyError:
        raise ValueError(
            f"unknown queue snapshot kind {state.get('kind')!r}"
        ) from None
    return queue_class.from_state(
        state,
        heap_class=heap_class,
        counters=counters,
        observer=observer,
        store=store,
    )
