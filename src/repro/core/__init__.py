"""The paper's primary contribution: incremental distance join and
distance semi-join, plus the queue machinery they run on."""

from repro.core.distance_join import (
    BASIC,
    DIRECT,
    EVEN,
    OBR_MODE,
    SIMULTANEOUS,
    IncrementalDistanceJoin,
    JoinResult,
)
from repro.core.semi_join import (
    DMAX_GLOBAL_ALL,
    DMAX_GLOBAL_NODES,
    DMAX_LOCAL,
    DMAX_NONE,
    INSIDE1,
    INSIDE2,
    OUTSIDE,
    IncrementalDistanceSemiJoin,
)
from repro.core.knn_join import KNearestNeighborJoin
from repro.core.reverse import ReverseDistanceJoin, ReverseDistanceSemiJoin
from repro.core.spec import (
    ADAPTIVE_QUEUE,
    HYBRID_QUEUE,
    MEMORY_QUEUE,
    QUEUE_KINDS,
    JoinSpec,
)
from repro.core.variations import (
    IntersectionJoin,
    IntersectionResult,
    all_nearest_neighbors,
    closest_pair,
    closest_pairs,
    intersection_join,
)
from repro.core.tiebreak import BREADTH_FIRST, DEPTH_FIRST, KeyMaker
from repro.core.trace import JoinTrace, traced_join
from repro.core.heap import AddressableMaxQueue, BinaryHeap, PairingHeap
from repro.core.pqueue import (
    AdaptiveHybridPairQueue,
    HybridPairQueue,
    MemoryPairQueue,
    PairQueue,
)
from repro.core.pairs import Item, Pair, PairDistance

__all__ = [
    "JoinSpec",
    "MEMORY_QUEUE",
    "HYBRID_QUEUE",
    "ADAPTIVE_QUEUE",
    "QUEUE_KINDS",
    "IncrementalDistanceJoin",
    "IncrementalDistanceSemiJoin",
    "ReverseDistanceJoin",
    "ReverseDistanceSemiJoin",
    "JoinResult",
    "BASIC",
    "EVEN",
    "SIMULTANEOUS",
    "DIRECT",
    "OBR_MODE",
    "DEPTH_FIRST",
    "BREADTH_FIRST",
    "OUTSIDE",
    "INSIDE1",
    "INSIDE2",
    "DMAX_NONE",
    "DMAX_LOCAL",
    "DMAX_GLOBAL_NODES",
    "DMAX_GLOBAL_ALL",
    "KeyMaker",
    "PairingHeap",
    "BinaryHeap",
    "AddressableMaxQueue",
    "PairQueue",
    "MemoryPairQueue",
    "HybridPairQueue",
    "AdaptiveHybridPairQueue",
    "Item",
    "Pair",
    "PairDistance",
    "KNearestNeighborJoin",
    "closest_pair",
    "closest_pairs",
    "all_nearest_neighbors",
    "IntersectionJoin",
    "IntersectionResult",
    "intersection_join",
    "JoinTrace",
    "traced_join",
]
