"""Execution tracing for the incremental joins.

For teaching, debugging, and the paper's correctness argument it is
invaluable to *watch* the algorithm: which pair was popped, what it
expanded into, what was pruned and why.  :func:`traced_join` wraps any
join driver with a recording layer and returns a :class:`JoinTrace`
that can be inspected programmatically or pretty-printed.

Example
-------
>>> from repro.rtree.rstar import RStarTree
>>> from repro.core.distance_join import IncrementalDistanceJoin
>>> from repro.core.trace import traced_join
>>> a, b = RStarTree(dim=2), RStarTree(dim=2)
>>> for x in range(4):
...     _ = a.insert_point((float(x), 0.0))
...     _ = b.insert_point((float(x), 1.0))
>>> join, trace = traced_join(IncrementalDistanceJoin, a, b)
>>> first = next(join)
>>> trace.events[0].kind
'pop'
>>> trace.reported
1
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple, Type

from repro.core.pairs import NODE, Item, Pair
from repro.util.obs import KEEP_FIRST, EventLog

_KIND_LABEL = {0: "node", 1: "obr", 2: "obj"}


def _item_label(item: Item) -> str:
    if item.kind == NODE:
        return f"node#{item.node_id}@L{item.level}"
    return f"{_KIND_LABEL[item.kind]}#{item.oid}"


def _pair_label(pair: Pair) -> str:
    return (
        f"({_item_label(pair.item1)}, {_item_label(pair.item2)}) "
        f"d={pair.distance:.4g}"
    )


@dataclass
class TraceEvent:
    """One recorded step of the algorithm."""

    sequence: int
    kind: str  # "pop" | "push" | "report" | "expand"
    label: str
    distance: float

    def __str__(self) -> str:
        return f"[{self.sequence:>6}] {self.kind:<7} {self.label}"


class JoinTrace:
    """The recorded execution: an event list plus running tallies.

    Backed by the bounded :class:`repro.util.obs.EventLog` with the
    keep-*first* policy: a trace is an execution prefix, so the first
    ``max_events`` steps are retained and later ones only counted.
    :attr:`events` keeps the original public shape (a list of
    :class:`TraceEvent`).
    """

    def __init__(self, max_events: int = 100_000) -> None:
        self.max_events = max_events
        self.pops = 0
        self.pushes = 0
        self.expansions = 0
        self.reported = 0
        self._log = EventLog(max_events=max_events, policy=KEEP_FIRST)
        self._t0 = time.perf_counter()

    @property
    def events(self) -> List[TraceEvent]:
        """The retained events in recording order."""
        return [
            TraceEvent(event.seq, event.kind, event.label, event.value)
            for event in self._log
        ]

    @property
    def total_events(self) -> int:
        """Every recorded step, including those past ``max_events``."""
        return self._log.total

    def _record(self, kind: str, label: str, distance: float) -> None:
        self._log.append(
            time.perf_counter() - self._t0, kind, label, distance
        )

    def render(self, limit: int = 50) -> str:
        """The first ``limit`` events as a readable transcript."""
        retained = self.events
        lines = [str(event) for event in retained[:limit]]
        if len(retained) > limit:
            lines.append(f"... {len(retained) - limit} more events")
        lines.append(
            f"totals: {self.pops} pops, {self.expansions} expansions, "
            f"{self.pushes} pushes, {self.reported} reported"
        )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"JoinTrace(events={self._log.total}, pops={self.pops}, "
            f"pushes={self.pushes}, reported={self.reported})"
        )


class _TracingQueue:
    """A pass-through queue proxy that records pops."""

    def __init__(self, inner, trace: JoinTrace) -> None:
        self._inner = inner
        self._trace = trace

    def push(self, key, value) -> None:
        self._inner.push(key, value)

    def pop(self):
        key, pair = self._inner.pop()
        self._trace.pops += 1
        self._trace._record("pop", _pair_label(pair), pair.distance)
        return key, pair

    def peek(self):
        return self._inner.peek()

    def __len__(self) -> int:
        return len(self._inner)

    def __bool__(self) -> bool:
        return len(self._inner) > 0


class _TracingMixin:
    """Overrides the join's queue/report plumbing to record events."""

    _trace: JoinTrace

    def _make_queue(self):  # type: ignore[override]
        return _TracingQueue(
            super()._make_queue(),  # type: ignore[misc]
            self._trace,
        )

    def _push(self, pair: Pair) -> None:  # type: ignore[override]
        self._trace.pushes += 1
        self._trace._record("push", _pair_label(pair), pair.distance)
        super()._push(pair)  # type: ignore[misc]

    def _process_pair(self, pair: Pair) -> None:  # type: ignore[override]
        self._trace.expansions += 1
        self._trace._record("expand", _pair_label(pair), pair.distance)
        super()._process_pair(pair)  # type: ignore[misc]

    def _report(self, pair: Pair):  # type: ignore[override]
        self._trace.reported += 1
        self._trace._record("report", _pair_label(pair), pair.distance)
        return super()._report(pair)  # type: ignore[misc]


def traced_join(
    join_class: Type,
    *args: Any,
    trace: Optional[JoinTrace] = None,
    **kwargs: Any,
) -> Tuple[Any, JoinTrace]:
    """Build ``join_class(*args, **kwargs)`` with tracing attached.

    Returns ``(join, trace)``.  Works with any of the join drivers
    (:class:`IncrementalDistanceJoin`, the semi-join, the reverse and
    k-NN variants) because it subclasses on the fly and only touches
    the shared plumbing hooks.
    """
    if trace is None:
        trace = JoinTrace()

    traced_class = type(
        f"Traced{join_class.__name__}", (_TracingMixin, join_class), {}
    )
    # _push fires during __init__ (the root pair), so the trace must
    # exist before construction completes: stash it on the class for
    # the duration of construction only.  The finally matters -- a
    # raising __init__ must not leave the trace pinned to the class.
    traced_class._trace = trace
    try:
        join = traced_class(*args, **kwargs)
    finally:
        del traced_class._trace
    join._trace = trace
    return join, trace
