"""Execution tracing for the incremental joins.

For teaching, debugging, and the paper's correctness argument it is
invaluable to *watch* the algorithm: which pair was popped, what it
expanded into, what was pruned and why.  :func:`traced_join` wraps any
join driver with a recording layer and returns a :class:`JoinTrace`
that can be inspected programmatically or pretty-printed.

Example
-------
>>> from repro.rtree.rstar import RStarTree
>>> from repro.core.distance_join import IncrementalDistanceJoin
>>> from repro.core.trace import traced_join
>>> a, b = RStarTree(dim=2), RStarTree(dim=2)
>>> for x in range(4):
...     _ = a.insert_point((float(x), 0.0))
...     _ = b.insert_point((float(x), 1.0))
>>> join, trace = traced_join(IncrementalDistanceJoin, a, b)
>>> first = next(join)
>>> trace.events[0].kind
'pop'
>>> trace.reported
1
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Tuple, Type

from repro.core.pairs import NODE, Item, Pair

_KIND_LABEL = {0: "node", 1: "obr", 2: "obj"}


def _item_label(item: Item) -> str:
    if item.kind == NODE:
        return f"node#{item.node_id}@L{item.level}"
    return f"{_KIND_LABEL[item.kind]}#{item.oid}"


def _pair_label(pair: Pair) -> str:
    return (
        f"({_item_label(pair.item1)}, {_item_label(pair.item2)}) "
        f"d={pair.distance:.4g}"
    )


@dataclass
class TraceEvent:
    """One recorded step of the algorithm."""

    sequence: int
    kind: str  # "pop" | "push" | "report" | "expand"
    label: str
    distance: float

    def __str__(self) -> str:
        return f"[{self.sequence:>6}] {self.kind:<7} {self.label}"


@dataclass
class JoinTrace:
    """The recorded execution: an event list plus running tallies."""

    events: List[TraceEvent] = field(default_factory=list)
    pops: int = 0
    pushes: int = 0
    expansions: int = 0
    reported: int = 0
    max_events: int = 100_000

    def _record(self, kind: str, label: str, distance: float) -> None:
        if len(self.events) < self.max_events:
            self.events.append(
                TraceEvent(len(self.events), kind, label, distance)
            )

    def render(self, limit: int = 50) -> str:
        """The first ``limit`` events as a readable transcript."""
        lines = [str(event) for event in self.events[:limit]]
        if len(self.events) > limit:
            lines.append(f"... {len(self.events) - limit} more events")
        lines.append(
            f"totals: {self.pops} pops, {self.expansions} expansions, "
            f"{self.pushes} pushes, {self.reported} reported"
        )
        return "\n".join(lines)


class _TracingQueue:
    """A pass-through queue proxy that records pops."""

    def __init__(self, inner, trace: JoinTrace) -> None:
        self._inner = inner
        self._trace = trace

    def push(self, key, value) -> None:
        self._inner.push(key, value)

    def pop(self):
        key, pair = self._inner.pop()
        self._trace.pops += 1
        self._trace._record("pop", _pair_label(pair), pair.distance)
        return key, pair

    def peek(self):
        return self._inner.peek()

    def __len__(self) -> int:
        return len(self._inner)

    def __bool__(self) -> bool:
        return len(self._inner) > 0


class _TracingMixin:
    """Overrides the join's queue/report plumbing to record events."""

    _trace: JoinTrace

    def _make_queue(self):  # type: ignore[override]
        return _TracingQueue(
            super()._make_queue(),  # type: ignore[misc]
            self._trace,
        )

    def _push(self, pair: Pair) -> None:  # type: ignore[override]
        self._trace.pushes += 1
        self._trace._record("push", _pair_label(pair), pair.distance)
        super()._push(pair)  # type: ignore[misc]

    def _process_pair(self, pair: Pair) -> None:  # type: ignore[override]
        self._trace.expansions += 1
        self._trace._record("expand", _pair_label(pair), pair.distance)
        super()._process_pair(pair)  # type: ignore[misc]

    def _report(self, pair: Pair):  # type: ignore[override]
        self._trace.reported += 1
        self._trace._record("report", _pair_label(pair), pair.distance)
        return super()._report(pair)  # type: ignore[misc]


def traced_join(
    join_class: Type,
    *args: Any,
    trace: JoinTrace = None,
    **kwargs: Any,
) -> Tuple[Any, JoinTrace]:
    """Build ``join_class(*args, **kwargs)`` with tracing attached.

    Returns ``(join, trace)``.  Works with any of the join drivers
    (:class:`IncrementalDistanceJoin`, the semi-join, the reverse and
    k-NN variants) because it subclasses on the fly and only touches
    the shared plumbing hooks.
    """
    if trace is None:
        trace = JoinTrace()

    traced_class = type(
        f"Traced{join_class.__name__}", (_TracingMixin, join_class), {}
    )
    # _push fires during __init__ (the root pair), so the trace must
    # exist before construction completes: stash it on the class, then
    # move it to the instance.
    traced_class._trace = trace
    join = traced_class(*args, **kwargs)
    join._trace = trace
    return join, trace
