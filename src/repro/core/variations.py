"""Variations of the incremental distance join (paper Sections 1 and
2.2.5).

Section 1 notes that "a variation of our incremental distance join
algorithm can be used to compute intersecting pairs, closest pair, and
all nearest neighbors in a set of objects".  This module provides those
variations on top of the join drivers:

- :func:`closest_pairs` / :func:`closest_pair` -- the closest pairs
  *within one* indexed set (a self distance join that suppresses
  self-pairs and mirror duplicates);
- :func:`all_nearest_neighbors` -- for every object of a set, its
  nearest *other* object (a self distance semi-join minus self-pairs);
- :class:`IntersectionJoin` -- intersecting pairs of two sets reported
  in order of distance from a reference object, the secondary-ordering
  extension of Section 2.2.5 ("find the intersections of roads and
  rivers in order of distance from a given house").  The ordering key
  for a pair is the MINDIST from the reference to the *intersection*
  of the two items' rectangles; child regions shrink under their
  parents, so the intersection shrinks and the key can only grow --
  the same consistency argument as the distance join's.
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Iterator, NamedTuple, Optional

from repro.core.distance_join import IncrementalDistanceJoin, JoinResult
from repro.core.pairs import OBJ
from repro.core.semi_join import IncrementalDistanceSemiJoin
from repro.geometry.metrics import EUCLIDEAN, Metric
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.rtree.base import RTreeBase


def _distinct_unordered(pair) -> bool:
    """Keep only object pairs with oid1 < oid2 (one copy, no self)."""
    if pair.item1.kind == OBJ and pair.item2.kind == OBJ:
        return pair.item1.oid < pair.item2.oid
    return True


def _distinct(pair) -> bool:
    """Drop self-pairs but keep both (a, b) and (b, a)."""
    if pair.item1.kind == OBJ and pair.item2.kind == OBJ:
        return pair.item1.oid != pair.item2.oid
    return True


def closest_pairs(
    tree: RTreeBase,
    metric: Metric = EUCLIDEAN,
    **join_kwargs: Any,
) -> IncrementalDistanceJoin:
    """All distinct unordered object pairs of ``tree``, closest first.

    The first result is the set's *closest pair*; consuming further
    results enumerates pairs in increasing distance, which makes this
    a drop-in building block for closest-pair-style computations when
    an R-tree already exists (the paper's Section 1 argument).
    """
    join_kwargs.setdefault("pair_filter", _distinct_unordered)
    join_kwargs.setdefault("metric", metric)
    return IncrementalDistanceJoin(tree, tree, **join_kwargs)


def closest_pair(
    tree: RTreeBase, metric: Metric = EUCLIDEAN
) -> Optional[JoinResult]:
    """The closest pair of distinct objects, or None if fewer than 2."""
    if len(tree) < 2:
        return None
    return next(closest_pairs(tree, metric=metric, max_pairs=1))


def all_nearest_neighbors(
    tree: RTreeBase,
    metric: Metric = EUCLIDEAN,
    **join_kwargs: Any,
) -> IncrementalDistanceSemiJoin:
    """For every object, its nearest *other* object, in distance order.

    A self distance semi-join with self-pairs suppressed -- the
    all-nearest-neighbours operation of the paper's Section 1.
    """
    join_kwargs.setdefault("pair_filter", _distinct)
    join_kwargs.setdefault("metric", metric)
    return IncrementalDistanceSemiJoin(tree, tree, **join_kwargs)


class IntersectionResult(NamedTuple):
    """One intersecting pair, keyed by distance from the reference."""

    reference_distance: float
    oid1: int
    obj1: Any
    oid2: int
    obj2: Any


class IntersectionJoin:
    """Intersecting object pairs in order of distance from a reference.

    Parameters
    ----------
    tree1, tree2:
        The joined spatial indexes (objects stored in the leaves).
    reference:
        The point the output is ordered around (the "house").
    metric:
        Metric for the reference-distance ordering.

    Intersection of *objects* is tested exactly when both payloads are
    :class:`~repro.geometry.shapes.SpatialObject` (distance 0) or
    Points (equality); otherwise the bounding rectangles decide, which
    matches indexing-only deployments.
    """

    def __init__(
        self,
        tree1: RTreeBase,
        tree2: RTreeBase,
        reference: Point,
        metric: Metric = EUCLIDEAN,
    ) -> None:
        self.tree1 = tree1
        self.tree2 = tree2
        self.reference = reference
        self.metric = metric
        self._seq = count()
        self._heap: list = []
        if len(tree1) and len(tree2):
            root1 = tree1.root()
            root2 = tree2.root()
            self._consider(
                root1.mbr(), root2.mbr(),
                ("n", root1.page_id, root1.level),
                ("n", root2.page_id, root2.level),
            )

    # ------------------------------------------------------------------

    def _consider(self, rect1: Rect, rect2: Rect, ref1, ref2) -> None:
        overlap = rect1.intersection(rect2)
        if overlap is None:
            return
        key = self.metric.mindist_point_rect(self.reference, overlap)
        is_node = ref1[0] == "n" or ref2[0] == "n"
        heapq.heappush(
            self._heap,
            (key, 1 if is_node else 0, next(self._seq), ref1, ref2,
             rect1, rect2),
        )

    def _objects_intersect(self, obj1: Any, obj2: Any) -> bool:
        if isinstance(obj1, Point) and isinstance(obj2, Point):
            return obj1 == obj2
        if hasattr(obj1, "distance_to") and hasattr(obj2, "distance_to"):
            return obj1.distance_to(obj2) == 0.0
        return True  # rectangles already overlap

    def __iter__(self) -> "IntersectionJoin":
        return self

    def __next__(self) -> IntersectionResult:
        while self._heap:
            key, __, ___, ref1, ref2, rect1, rect2 = heapq.heappop(
                self._heap
            )
            if ref1[0] == "o" and ref2[0] == "o":
                __tag1, oid1, obj1 = ref1
                __tag2, oid2, obj2 = ref2
                if not self._objects_intersect(obj1, obj2):
                    continue
                return IntersectionResult(key, oid1, obj1, oid2, obj2)
            # Expand the node at the shallower level (even traversal).
            expand_first = ref1[0] == "n" and (
                ref2[0] != "n" or ref1[2] >= ref2[2]
            )
            if expand_first:
                node = self.tree1.read_node(ref1[1])
                for entry in node.entries:
                    child = (
                        ("n", entry.child_id, node.level - 1)
                        if node.level > 0
                        else ("o", entry.oid, entry.obj)
                    )
                    self._consider(entry.rect, rect2, child, ref2)
            else:
                node = self.tree2.read_node(ref2[1])
                for entry in node.entries:
                    child = (
                        ("n", entry.child_id, node.level - 1)
                        if node.level > 0
                        else ("o", entry.oid, entry.obj)
                    )
                    self._consider(rect1, entry.rect, ref1, child)
        raise StopIteration


def intersection_join(
    tree1: RTreeBase,
    tree2: RTreeBase,
    reference: Point,
    metric: Metric = EUCLIDEAN,
) -> Iterator[IntersectionResult]:
    """Convenience wrapper over :class:`IntersectionJoin`."""
    return IntersectionJoin(tree1, tree2, reference, metric=metric)
