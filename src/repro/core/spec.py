"""The declarative join configuration: one spec, one validation.

The paper's algorithm family is a single engine with many knobs --
traversal tie-break (Section 2.2.2), node-expansion policy, distance
range (Section 2.2.3), maximum-pair estimation (Section 2.2.4), queue
tier (Section 3.2), leaf handling, direction.  :class:`JoinSpec`
captures every knob as a frozen, picklable dataclass so the same value
can configure a sequential operator, travel inside a parallel
worker task, define a benchmark case, or annotate a query plan node.

:meth:`JoinSpec.validate` is the *single* validation point for the
knob combinations; the operator constructors no longer duplicate
``require(...)`` blocks.  Contexts that restrict the space further
(the forward semi-join cannot run descending; parallel workers only
support the in-memory queue) pass flags instead of re-implementing
checks.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Optional

from repro.core.heap import PairingHeap
from repro.core.tiebreak import DEPTH_FIRST, POLICIES as TIE_BREAKS
from repro.geometry.metrics import EUCLIDEAN, Metric
from repro.util.validation import require

_INF = float("inf")

#: Node-processing policies for node/node pairs (Section 2.2.2).
BASIC = "basic"
EVEN = "even"
SIMULTANEOUS = "simultaneous"
NODE_POLICIES = (BASIC, EVEN, SIMULTANEOUS)

#: Leaf content modes.
DIRECT = "direct"
OBR_MODE = "obr"
LEAF_MODES = (DIRECT, OBR_MODE)

#: Priority-queue tiers (Section 3.2).
MEMORY_QUEUE = "memory"
HYBRID_QUEUE = "hybrid"
ADAPTIVE_QUEUE = "adaptive"
QUEUE_KINDS = (MEMORY_QUEUE, HYBRID_QUEUE, ADAPTIVE_QUEUE)

#: Semi-join filter-placement strategies (Section 4.2).
OUTSIDE = "outside"
INSIDE1 = "inside1"
INSIDE2 = "inside2"
FILTER_STRATEGIES = (OUTSIDE, INSIDE1, INSIDE2)

#: Semi-join d_max-exploitation strategies (Section 4.2).
DMAX_NONE = "none"
DMAX_LOCAL = "local"
DMAX_GLOBAL_NODES = "global_nodes"
DMAX_GLOBAL_ALL = "global_all"
DMAX_STRATEGIES = (
    DMAX_NONE, DMAX_LOCAL, DMAX_GLOBAL_NODES, DMAX_GLOBAL_ALL
)

#: Batch-kernel selection (see :mod:`repro.kernels` / docs/KERNELS.md).
KERNEL_AUTO = "auto"
KERNEL_SCALAR = "scalar"
KERNEL_VECTOR = "vector"
KERNEL_MODES = (KERNEL_AUTO, KERNEL_SCALAR, KERNEL_VECTOR)


@dataclass(frozen=True)
class JoinSpec:
    """Every variant knob of the incremental distance join family.

    Field names match the keyword arguments the operators have always
    accepted, so ``JoinSpec(**kwargs)`` and the keyword constructors
    describe the same configuration.  Instances are immutable (derive
    variants with :meth:`evolve`) and picklable whenever their
    ``pair_filter`` and ``heap_class`` are, which is what lets the
    parallel engine ship one spec to every worker.

    ``filter_strategy`` and ``dmax_strategy`` only take effect in the
    semi-join/k-NN operators; they are carried here so a single spec
    describes any operator in the family.
    """

    metric: Metric = EUCLIDEAN
    min_distance: float = 0.0
    max_distance: float = _INF
    max_pairs: Optional[int] = None
    tie_break: str = DEPTH_FIRST
    node_policy: str = EVEN
    queue: str = MEMORY_QUEUE
    queue_dt: Optional[float] = None
    heap_class: type = PairingHeap
    leaf_mode: str = DIRECT
    descending: bool = False
    estimate: bool = True
    aggressive: bool = False
    pair_filter: Optional[Callable[..., bool]] = None
    process_leaves_together: bool = False
    filter_strategy: str = INSIDE2
    dmax_strategy: str = DMAX_LOCAL
    #: Batch-kernel selection: ``"auto"`` uses the vectorized node
    #: expansion whenever numpy is importable and the metric supports
    #: it, ``"scalar"`` forces the pure-Python path, ``"vector"``
    #: requires the kernels (raising KernelError when unavailable).
    #: Results are bit-identical either way; this knob only trades
    #: speed (see docs/KERNELS.md).
    kernel: str = KERNEL_AUTO

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def coalesce(
        cls,
        spec: Optional["JoinSpec"],
        knobs: Mapping[str, Any],
    ) -> "JoinSpec":
        """Resolve the ``(spec, **kwargs)`` constructor convention.

        No spec: the knobs alone define one (the keyword back-compat
        path).  Spec plus knobs: the knobs override individual fields.
        Unknown knob names raise ``TypeError``, exactly like an
        unexpected keyword argument.
        """
        if spec is None:
            return cls(**knobs)
        if knobs:
            return dataclasses.replace(spec, **knobs)
        return spec

    def evolve(self, **changes: Any) -> "JoinSpec":
        """A copy with ``changes`` applied (frozen-dataclass update)."""
        return dataclasses.replace(self, **changes)

    # ------------------------------------------------------------------
    # the single validation point
    # ------------------------------------------------------------------

    def validate(
        self,
        *,
        semi_join: bool = False,
        parallel: bool = False,
    ) -> "JoinSpec":
        """Check knob values and combinations; returns ``self``.

        ``semi_join``
            The spec configures a *forward* distance semi-join (or
            k-NN join), which cannot run descending.
        ``parallel``
            The spec configures the partitioned parallel engine, whose
            watermark merge is a min-merge (no ``descending``) and
            whose per-tile worker queues are always in-memory (no
            ``queue`` tier choice).
        """
        require(self.node_policy in NODE_POLICIES,
                f"node_policy must be one of {NODE_POLICIES}")
        require(self.tie_break in TIE_BREAKS,
                f"tie_break must be one of {TIE_BREAKS}")
        require(self.leaf_mode in LEAF_MODES,
                f"leaf_mode must be one of {LEAF_MODES}")
        require(self.min_distance >= 0.0,
                "min_distance must be non-negative")
        require(self.max_distance >= self.min_distance,
                "max_distance must be >= min_distance")
        if self.max_pairs is not None:
            require(self.max_pairs >= 1, "max_pairs must be at least 1")
        require(self.queue in QUEUE_KINDS,
                'queue must be "memory", "hybrid", or "adaptive"')
        if self.queue == HYBRID_QUEUE:
            require(self.queue_dt is not None and self.queue_dt > 0,
                    'queue="hybrid" requires a positive queue_dt')
        require(self.kernel in KERNEL_MODES,
                f"kernel must be one of {KERNEL_MODES}")
        require(self.filter_strategy in FILTER_STRATEGIES,
                f"filter_strategy must be one of {FILTER_STRATEGIES}")
        require(self.dmax_strategy in DMAX_STRATEGIES,
                f"dmax_strategy must be one of {DMAX_STRATEGIES}")
        if self.dmax_strategy != DMAX_NONE:
            require(self.filter_strategy == INSIDE2,
                    "d_max strategies build on inside2 filtering "
                    "(paper Section 4.2.1)")
        if semi_join and self.descending:
            raise ValueError(
                "the reverse distance semi-join reports the *farthest* "
                "inner object per outer object (paper Section 2.3); use "
                "ReverseDistanceSemiJoin explicitly"
            )
        if parallel:
            require(not self.descending,
                    "the parallel join's watermark merge is a min-merge; "
                    "descending (farthest-first) is not supported")
            require(self.queue == MEMORY_QUEUE,
                    "parallel workers always use the in-memory queue; "
                    'a queue tier cannot be requested (got '
                    f'queue={self.queue!r})')
        return self
