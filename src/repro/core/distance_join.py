"""The incremental distance join (paper Section 2.2).

:class:`IncrementalDistanceJoin` is a Python iterator producing the
object pairs of two R-trees in order of increasing (or, with
``descending=True``, decreasing) distance.  Its entire state is a
priority queue of item pairs, so it can be consumed lazily in a
pipeline: retrieving ``n`` pairs costs only the work needed for those
``n`` pairs (the paper's "fast first" property).

All of the paper's algorithmic knobs are exposed:

- ``tie_break``: depth-first or breadth-first resolution of equal
  distances (Section 2.2.2);
- ``node_policy``: which node of a node/node pair to expand --
  ``"basic"`` (always the first, Figure 3), ``"even"`` (the shallower
  one, the paper's best overall), or ``"simultaneous"`` (both at once,
  with search-space restriction and plane sweep, Figure 4);
- ``min_distance`` / ``max_distance``: the distance range of
  Section 2.2.3, pruned with MINDIST/MAXDIST (Figure 5);
- ``max_pairs``: an upper bound on the number of result pairs, enabling
  the maximum-distance estimation of Section 2.2.4 (with the
  ``aggressive`` estimator and its restart path as an option);
- ``queue``: a pure-memory pairing heap or the hybrid memory/disk
  queue of Section 3.2;
- ``leaf_mode``: objects stored directly in leaves (``"direct"``, the
  paper's experimental setup) or leaves holding bounding rectangles
  with deferred object resolution (``"obr"``);
- ``descending``: the reverse, farthest-first variant (Section 2.2.5);
- ``pair_filter``: the spatial-criterion hook of Section 2.2.5.
"""

from __future__ import annotations

import pickle
from typing import Any, Dict, List, NamedTuple, Optional, Tuple

from repro.core.estimate import JoinEstimator, make_join_estimator
from repro.core.pairs import (
    NODE,
    OBJ,
    OBR,
    Item,
    Pair,
    PairDistance,
)
from repro.core.planesweep import (
    restrict_entries,
    sweep_index_pairs,
    sweep_pairs,
)
from repro.core.pqueue import (
    AdaptiveHybridPairQueue,
    HybridPairQueue,
    MemoryPairQueue,
    PairQueue,
    queue_from_state,
)
from repro.core.spec import (  # noqa: F401  (re-exported for back-compat)
    ADAPTIVE_QUEUE,
    BASIC,
    DIRECT,
    EVEN,
    HYBRID_QUEUE,
    LEAF_MODES,
    MEMORY_QUEUE,
    NODE_POLICIES,
    OBR_MODE,
    SIMULTANEOUS,
    JoinSpec,
)
from repro.core.tiebreak import KeyMaker
from repro.errors import CursorError, JoinError
from repro.geometry.point import Point
from repro.kernels import resolve_kernels
from repro.rtree.base import RTreeBase
from repro.util.counters import CounterRegistry
from repro.util.obs import NULL_OBSERVER, Observer

_INF = float("inf")

#: Identifier and version of the suspended-join cursor format.
CURSOR_FORMAT = "repro-join-cursor"
CURSOR_VERSION = 1


class JoinResult(NamedTuple):
    """One reported pair of the distance (semi-)join."""

    distance: float
    oid1: int
    obj1: Any
    oid2: int
    obj2: Any


class IncrementalDistanceJoin:
    """Incremental distance join of two R-trees (see module docstring).

    Parameters
    ----------
    tree1, tree2:
        The spatial indexes of the two joined relations.
    spec:
        A :class:`~repro.core.spec.JoinSpec` holding every algorithm
        knob.  Individual knobs may still be passed as keyword
        arguments (the historical constructor surface); keywords
        override the corresponding spec fields.  The resolved spec is
        validated once by :meth:`JoinSpec.validate` and kept on
        ``self.spec``.
    counters:
        Shared performance-counter registry (defaults to a registry
        shared with ``tree1``).
    observer:
        Optional :class:`~repro.util.obs.Observer` receiving phase
        timings (``join.init``, ``join.expand``), queue refill spans,
        and events.  Defaults to the shared disabled observer, in
        which case the instrumentation costs one boolean check per
        node expansion.
    check_consistency:
        Verify the distance-function consistency contract at run time.
    **knobs:
        Any :class:`JoinSpec` field -- ``metric``, ``min_distance``,
        ``max_distance``, ``max_pairs``, ``tie_break``,
        ``node_policy``, ``queue``, ``queue_dt``, ``heap_class``,
        ``leaf_mode``, ``descending``, ``estimate``, ``aggressive``,
        ``pair_filter``, ``process_leaves_together`` -- with the
        semantics documented there and in the module docstring.
    """

    #: Validation context: the forward semi-join (and k-NN join)
    #: cannot run descending; see :meth:`JoinSpec.validate`.
    _spec_semi_join = False

    def __init__(
        self,
        tree1: RTreeBase,
        tree2: RTreeBase,
        spec: Optional[JoinSpec] = None,
        *,
        counters: Optional[CounterRegistry] = None,
        observer: Optional[Observer] = None,
        check_consistency: bool = False,
        **knobs: Any,
    ) -> None:
        spec = JoinSpec.coalesce(spec, knobs)
        spec.validate(semi_join=self._spec_semi_join)
        if tree1.dim != tree2.dim:
            raise JoinError(
                f"cannot join trees of dimension {tree1.dim} and {tree2.dim}"
            )

        self.spec = spec
        self.tree1 = tree1
        self.tree2 = tree2
        self.metric = spec.metric
        self.min_distance = float(spec.min_distance)
        self.max_distance = float(spec.max_distance)
        self.max_pairs = spec.max_pairs
        self.tie_break = spec.tie_break
        self.node_policy = spec.node_policy
        self.queue_kind = spec.queue
        self.queue_dt = spec.queue_dt
        self.heap_class = spec.heap_class
        self.leaf_mode = spec.leaf_mode
        self.descending = spec.descending
        self.estimate = spec.estimate and not spec.descending
        self.aggressive = spec.aggressive
        self.pair_filter = spec.pair_filter
        self.process_leaves_together = spec.process_leaves_together
        self.filter_strategy = spec.filter_strategy
        self.dmax_strategy = spec.dmax_strategy
        self.counters = counters if counters is not None else tree1.counters
        self.obs = observer if observer is not None else NULL_OBSERVER
        self.distance = PairDistance(
            spec.metric, self.counters, check_consistency=check_consistency
        )
        # Batch kernels (None = scalar path).  Resolved once; with
        # kernel="auto" an environment without numpy silently gets the
        # scalar path, which produces bit-identical results.
        self._kern = resolve_kernels(spec.kernel, spec.metric)
        # The vectorized expansion may defer child-Item construction
        # until after pruning -- but only when the _skip_child hook is
        # the base no-op.  A subclass hook (the semi-join's Inside2
        # seen-set) must observe every child, in entry order, before
        # any distances are computed.
        self._hooks_default = (
            type(self)._skip_child is IncrementalDistanceJoin._skip_child
        )
        # Bulk enqueueing is only sound while per-push side effects are
        # the stock ones; a subclass overriding _push (e.g. the tracing
        # mixin recording push events) keeps the per-pair loop.
        self._bulk_push_ok = (
            type(self)._push is IncrementalDistanceJoin._push
        )
        # Child items are immutable, so the vectorized expansion may
        # cache a node's child-Item list on its SoA and reuse it across
        # expansions -- unless a subclass customizes construction.
        self._child_items_default = (
            type(self)._make_child_item
            is IncrementalDistanceJoin._make_child_item
        )
        # Hot-path counters, cached once (registry lookups add up over
        # hundreds of thousands of candidate pairs).
        self._c_queue_inserts = self.counters.counter("queue_inserts")
        self._c_queue_size = self.counters.counter("queue_size")
        self._c_pruned_range = self.counters.counter("pruned_range")
        self._c_pairs_reported = self.counters.counter("pairs_reported")

        self._produced = 0
        self._to_skip = 0
        if getattr(self, "_suspended_init", False):
            # :meth:`load` finishes construction by restoring a cursor
            # instead of seeding the queue with the root pair.
            return
        with self.obs.span("join.init"):
            self._init_state()

    # ------------------------------------------------------------------
    # state construction
    # ------------------------------------------------------------------

    def _make_queue(self) -> PairQueue:
        if self.queue_kind == "hybrid":
            return HybridPairQueue(
                dt=float(self.queue_dt),
                counters=self.counters,
                heap_class=self.heap_class,
                observer=self.obs if self.obs.enabled else None,
            )
        if self.queue_kind == "adaptive":
            return AdaptiveHybridPairQueue(
                counters=self.counters,
                heap_class=self.heap_class,
                observer=self.obs if self.obs.enabled else None,
            )
        return MemoryPairQueue(heap_class=self.heap_class)

    def _make_estimator(self) -> Optional[JoinEstimator]:
        if not self.estimate or self.max_pairs is None:
            return None
        return make_join_estimator(
            self.max_pairs,
            self.min_distance,
            self.max_distance,
            self.counters,
            aggressive=self.aggressive,
        )

    def _read_node(self, tree: RTreeBase, node_id: int):
        """Fetch a node via the substrate's ``read_node`` (so any index
        speaking the node/entry protocol works -- R-trees, quadtrees),
        charging this join's registry with ``node_reads`` and, on a
        buffer miss, ``node_io`` (the Table 1 measure) when the tree
        was built with a different registry.  With a shared registry
        the tree's own accounting already covers it."""
        if tree.counters is self.counters:
            return tree.read_node(node_id)
        hit = tree.pool.contains(node_id)
        node = tree.read_node(node_id)
        self.counters.add("node_reads")
        if not hit:
            self.counters.add("node_io")
        return node

    def _init_state(self) -> None:
        self._queue = self._make_queue()
        self._keys = KeyMaker(self.tie_break, descending=self.descending)
        self._estimator = self._make_estimator()
        self._produced = 0
        if len(self.tree1) == 0 or len(self.tree2) == 0:
            return
        root1 = self._read_node(self.tree1, self.tree1.root_id)
        root2 = self._read_node(self.tree2, self.tree2.root_id)
        item1 = Item(NODE, root1.mbr(), node_id=root1.page_id,
                     level=root1.level)
        item2 = Item(NODE, root2.mbr(), node_id=root2.page_id,
                     level=root2.level)
        d = self.distance.mindist(item1, item2)
        self._push(Pair(item1, item2, d))

    # ------------------------------------------------------------------
    # iterator protocol
    # ------------------------------------------------------------------

    def __iter__(self) -> "IncrementalDistanceJoin":
        return self

    def __next__(self) -> JoinResult:
        while True:
            if (
                self.max_pairs is not None
                and self._produced >= self.max_pairs
            ):
                raise StopIteration
            if self._complete():
                raise StopIteration
            if not self._queue:
                if self._should_restart():
                    self._restart()
                    continue
                raise StopIteration
            key, pair = self._queue.pop()
            self._c_queue_size.observe(len(self._queue))
            if self._estimator is not None:
                self._estimator.on_dequeue(pair)

            if pair.is_result:
                result = self._handle_result(pair)
                if result is not None:
                    return result
                continue
            if pair.is_obr_pair:
                result = self._handle_obr_pair(pair)
                if result is not None:
                    return result
                continue
            # At least one item is a node.
            if not self.descending and pair.distance > self._effective_dmax():
                # The maximum distance shrank since this pair was
                # enqueued; nothing derived from it can qualify.
                self._c_pruned_range.add()
                continue
            if self._skip_popped(pair):
                continue
            if self.obs.enabled:
                with self.obs.span("join.expand"):
                    self._process_pair(pair)
            else:
                self._process_pair(pair)

    # ------------------------------------------------------------------
    # result handling
    # ------------------------------------------------------------------

    def _in_range(self, d: float) -> bool:
        return self.min_distance <= d <= self._effective_dmax()

    def _effective_dmax(self) -> float:
        if self._estimator is not None:
            return self._estimator.current_dmax
        return self.max_distance

    def _handle_result(self, pair: Pair) -> Optional[JoinResult]:
        d = pair.distance
        if not self._in_range(d):
            self._c_pruned_range.add()
            return None
        if self._skip_result(pair):
            return None
        return self._report(pair)

    def _handle_obr_pair(self, pair: Pair) -> Optional[JoinResult]:
        # Both items are object bounding rectangles: access the objects
        # and compute their exact distance (INCDISTJOIN lines 7-13).
        if self._skip_popped(pair):
            return None
        self.counters.add("object_accesses", 2)
        item1 = Item(OBJ, pair.item1.rect, oid=pair.item1.oid,
                     obj=pair.item1.obj)
        item2 = Item(OBJ, pair.item2.rect, oid=pair.item2.oid,
                     obj=pair.item2.obj)
        d = self.distance.object_distance(item1, item2)
        resolved = Pair(item1, item2, d)
        if not self._in_range(d):
            self._c_pruned_range.add()
            return None
        signed = -d if self.descending else d
        if not self._queue or signed <= self._queue.peek()[0][0]:
            if self._skip_result(resolved):
                return None
            return self._report(resolved)
        self._push_resolved(resolved)
        return None

    def _report(self, pair: Pair) -> Optional[JoinResult]:
        self._produced += 1
        self._c_pairs_reported.add()
        self._on_report(pair)
        if self._to_skip > 0:
            # Replaying after a restart: this result was already
            # delivered to the consumer before the restart.
            self._to_skip -= 1
            return None
        return JoinResult(
            pair.distance,
            pair.item1.oid, pair.item1.obj,
            pair.item2.oid, pair.item2.obj,
        )

    # Hooks overridden by the semi-join -------------------------------

    def _complete(self) -> bool:
        """Return True when no further results can exist (semi-join:
        every outer object already has its nearest neighbour)."""
        return False

    def _skip_result(self, pair: Pair) -> bool:
        """Return True to suppress a result pair (semi-join seen-set)."""
        return False

    def _skip_popped(self, pair: Pair) -> bool:
        """Return True to discard a popped non-result pair."""
        return False

    def _on_report(self, pair: Pair) -> None:
        """Bookkeeping after a result is produced."""
        if self._estimator is not None:
            self._estimator.on_report()

    def _on_expand(self, pair: Pair, side: int) -> None:
        """A node of ``pair`` (on ``side``) is about to be expanded."""

    def _skip_child(self, side: int, child: Item) -> bool:
        """Return True to drop a child entry before pairing it."""
        return False

    def _filter_candidates(
        self, pair: Pair, side: int,
        candidates: List[Tuple[Pair, float]],
    ) -> List[Tuple[Pair, float]]:
        """Post-filter candidate child pairs (semi-join d_max hooks)."""
        return candidates

    # ------------------------------------------------------------------
    # node processing
    # ------------------------------------------------------------------

    def _process_pair(self, pair: Pair) -> None:
        item1, item2 = pair.item1, pair.item2
        if item1.is_node and item2.is_node:
            if self.node_policy == SIMULTANEOUS:
                self._process_both(pair)
                return
            if (
                self.process_leaves_together
                and item1.level == 0
                and item2.level == 0
            ):
                # Section 2.2.2 (unbalanced structures / deferred leaf
                # processing): expand leaf/leaf pairs simultaneously so
                # each object is fetched at most once per pair.
                self._process_both(pair)
                return
            if self.node_policy == EVEN and item2.level > item1.level:
                self._process_node(pair, side=2)
                return
            self._process_node(pair, side=1)
            return
        if item1.is_node:
            self._process_node(pair, side=1)
        else:
            self._process_node(pair, side=2)

    def _tree(self, side: int) -> RTreeBase:
        return self.tree1 if side == 1 else self.tree2

    def _make_child_item(self, node_level: int, entry: Any) -> Item:
        if node_level > 0:
            return Item(NODE, entry.rect, node_id=entry.child_id,
                        level=node_level - 1)
        resolved = self.leaf_mode == DIRECT
        return Item(OBJ if resolved else OBR, entry.rect,
                    oid=entry.oid, obj=entry.obj)

    def _process_node(self, pair: Pair, side: int) -> None:
        """Expand the node on ``side`` against the pair's other item
        (PROCESSNODE1 / PROCESSNODE2 of Figures 3 and 5)."""
        self._on_expand(pair, side)
        node_item = pair.item1 if side == 1 else pair.item2
        other = pair.item2 if side == 1 else pair.item1
        tree = self._tree(side)
        node = self._read_node(tree, node_item.node_id)
        eff_dmax = self._effective_dmax()

        candidates: Optional[List[Tuple[Pair, float]]] = None
        if self._kern is not None:
            candidates = self._expand_vector(node, other, side, eff_dmax)
        if candidates is None:
            candidates = self._expand_scalar(node, other, side, eff_dmax)
        self._push_candidates(pair, side, candidates)

    def _expand_scalar(
        self, node: Any, other: Item, side: int, eff_dmax: float
    ) -> List[Tuple[Pair, float]]:
        """The per-entry (scalar) expansion loop."""
        candidates: List[Tuple[Pair, float]] = []
        for entry in node.entries:
            child = self._make_child_item(node.level, entry)
            if self._skip_child(side, child):
                continue
            if side == 1:
                child_pair = Pair(child, other, 0.0)
            else:
                child_pair = Pair(other, child, 0.0)
            d = self.distance.mindist(child_pair.item1, child_pair.item2)
            child_pair.distance = d
            if not self._range_admits(child_pair, d, eff_dmax):
                continue
            # The spatial-criterion filter runs before the semi-join's
            # d_max hooks: a pair excluded by the criterion must not
            # contribute pruning bounds (its objects are not valid
            # nearest-neighbour candidates).
            if self.pair_filter is not None and not self.pair_filter(
                child_pair
            ):
                self.counters.add("pruned_filter")
                continue
            candidates.append((child_pair, d))
        return candidates

    def _expand_vector(
        self, node: Any, other: Item, side: int, eff_dmax: float
    ) -> Optional[List[Tuple[Pair, float]]]:
        """Batch-kernel expansion of one node against ``other``.

        Returns the candidate list -- identical, element for element,
        to what :meth:`_expand_scalar` would build, with identical
        counter charges -- or ``None`` to fall back to the scalar path
        (foreign node type, or object payloads the point kernel cannot
        serve).  Stage order replicates the scalar loop exactly:
        seen-set hook, MINDIST + range test, pair filter.
        """
        soa_of = getattr(node, "entries_soa", None)
        if soa_of is None:
            return None
        soa = soa_of()
        if soa is None:
            return None
        entries = node.entries
        level = node.level
        if soa.n == 0:
            return []
        # Object/object pairs take the exact-distance path; everything
        # else is a rectangle bound.  Mixed outcomes cannot occur: the
        # child kind is uniform across one node's entries.
        object_path = (
            level == 0 and other.kind == OBJ and self.leaf_mode == DIRECT
        )
        if object_path and (
            soa.pts is None or not isinstance(other.obj, Point)
        ):
            # Non-point payloads (exact shapes) stay scalar.
            return None

        kern = self._kern
        dist = self.distance
        children_all = self._node_children(soa, entries, level)

        # The Inside2 seen-set hook must observe every child, in entry
        # order, *before* any distance is computed (its pruned_seen
        # charges are part of the bit-identity contract); with the
        # default no-op hook, per-child work is deferred until after
        # pruning.
        children: Optional[List[Item]]
        if self._hooks_default:
            children = None
            lo, hi, pts = soa.lo, soa.hi, soa.pts
            kept_entries = entries
            m = soa.n
        else:
            children = []
            taken: List[int] = []
            for i, entry in enumerate(entries):
                if children_all is not None:
                    child = children_all[i]
                else:
                    child = self._make_child_item(level, entry)
                if self._skip_child(side, child):
                    continue
                children.append(child)
                taken.append(i)
            m = len(children)
            if m == 0:
                return []
            kept_entries = [entries[i] for i in taken]
            lo = soa.lo[taken]
            hi = soa.hi[taken]
            pts = soa.pts[taken] if soa.pts is not None else None

        if object_path:
            d = kern.point_distance(pts, other.obj.coords)
            dist._dist_calcs.add(m)
        else:
            olo, ohi = other.rect.lo, other.rect.hi
            if side == 1:
                d = kern.mindist(lo, hi, olo, ohi)
            else:
                d = kern.mindist(olo, ohi, lo, hi)
            dist._bound_calcs.add(m)

        alive = self._range_admits_batch(
            kern, d, eff_dmax, object_path,
            lo, hi, other, side,
        )

        pair_filter = self.pair_filter
        d_list = d.tolist()
        source = children if children is not None else children_all
        if source is not None and pair_filter is None:
            # The common shape: no filter, children already built.
            if alive is None:
                if side == 1:
                    return [(Pair(c, other, di), di)
                            for c, di in zip(source, d_list)]
                return [(Pair(other, c, di), di)
                        for c, di in zip(source, d_list)]
            if side == 1:
                return [(Pair(source[i], other, d_list[i]), d_list[i])
                        for i in alive.tolist()]
            return [(Pair(other, source[i], d_list[i]), d_list[i])
                    for i in alive.tolist()]
        candidates: List[Tuple[Pair, float]] = []
        indices = range(m) if alive is None else alive.tolist()
        for i in indices:
            if source is not None:
                child = source[i]
            else:
                child = self._make_child_item(level, kept_entries[i])
            di = d_list[i]
            if side == 1:
                child_pair = Pair(child, other, di)
            else:
                child_pair = Pair(other, child, di)
            if pair_filter is not None and not pair_filter(child_pair):
                self.counters.add("pruned_filter")
                continue
            candidates.append((child_pair, di))
        return candidates

    def _node_children(
        self, soa: Any, entries: Any, level: int
    ) -> Optional[List[Item]]:
        """The node's full child-Item list, cached on its SoA.

        Items are immutable once constructed (OBR resolution builds
        *new* OBJ items), so a node expanded against many partners can
        reuse one list.  The cache is keyed by child kind: a branch
        node always yields NODE items, a leaf node OBJ or OBR items
        depending on ``leaf_mode``, so concurrent joins with different
        modes coexist.  Returns ``None`` (no caching) when a subclass
        customizes item construction.
        """
        if not self._child_items_default:
            return None
        if level > 0:
            key = NODE
        elif self.leaf_mode == DIRECT:
            key = OBJ
        else:
            key = OBR
        cached = soa.items.get(key)
        if cached is None:
            make = self._make_child_item
            cached = [make(level, e) for e in entries]
            soa.items[key] = cached
        return cached

    def _range_admits_batch(
        self, kern, d, eff_dmax: float, object_path: bool,
        lo, hi, other: Optional[Item], side: int,
        lo2=None, hi2=None,
    ):
        """Vectorized :meth:`_range_admits` over a distance array.

        Returns the indices of admitted elements (original order), or
        ``None`` meaning *all* elements are admitted (the common
        unbounded case, short-circuited before any mask work).  Each
        test replicates the scalar comparison polarity (NaN distances
        are *not* pruned by ``d > dmax`` style tests, exactly as in
        the scalar code) and charges the same counters: one
        ``pruned_range`` unit per rejected element, and one MAXDIST
        bound (or exact re-evaluation on the object path) per element
        surviving the first test when a minimum distance is active.

        For the one-sided expansion ``lo``/``hi`` pair with ``other``;
        the simultaneous expansion passes both sides' corner arrays
        (``lo2``/``hi2``) and ``other=None``.
        """
        if self.min_distance == 0.0 and (
            self.max_distance == _INF if self.descending
            else eff_dmax == _INF
        ):
            # No bound can prune (d > inf is false even for NaN): the
            # scalar loop admits everything and charges nothing.
            return None
        np = kern.np
        alive = np.arange(d.shape[0])
        pruned = 0
        if not self.descending:
            keep = np.logical_not(np.greater(d, eff_dmax))
            pruned += alive.size - int(np.count_nonzero(keep))
            alive = alive[keep]
        if self.min_distance > 0.0 and alive.size:
            if object_path:
                # Scalar maxdist() of an object/object pair re-runs
                # object_distance: same value, one more dist_calcs.
                upper = d[alive]
                self.distance._dist_calcs.add(int(alive.size))
            else:
                if other is not None:
                    lo_a, hi_a = lo[alive], hi[alive]
                    if side == 1:
                        upper = kern.maxdist(
                            lo_a, hi_a, other.rect.lo, other.rect.hi
                        )
                    else:
                        upper = kern.maxdist(
                            other.rect.lo, other.rect.hi, lo_a, hi_a
                        )
                else:
                    upper = kern.maxdist(
                        lo[alive], hi[alive], lo2[alive], hi2[alive]
                    )
                self.distance._bound_calcs.add(int(alive.size))
            keep = np.logical_not(np.less(upper, self.min_distance))
            pruned += int(alive.size) - int(np.count_nonzero(keep))
            alive = alive[keep]
        if self.descending and alive.size:
            keep = np.logical_not(
                np.greater(d[alive], self.max_distance)
            )
            pruned += int(alive.size) - int(np.count_nonzero(keep))
            alive = alive[keep]
        if pruned:
            self._c_pruned_range.add(pruned)
        return alive

    def _process_both(self, pair: Pair) -> None:
        """Expand both nodes at once with restriction + plane sweep
        (the "Simultaneous" policy, Section 2.2.2 / Figure 4)."""
        self._on_expand(pair, side=1)
        self._on_expand(pair, side=2)
        node1 = self._read_node(self.tree1, pair.item1.node_id)
        node2 = self._read_node(self.tree2, pair.item2.node_id)
        eff_dmax = self._effective_dmax()

        candidates: Optional[List[Tuple[Pair, float]]] = None
        if self._kern is not None:
            candidates = self._expand_both_vector(
                node1, node2, pair, eff_dmax
            )
        if candidates is None:
            candidates = self._expand_both_scalar(
                node1, node2, pair, eff_dmax
            )
        self._push_candidates(pair, 0, candidates)

    def _expand_both_scalar(
        self, node1: Any, node2: Any, pair: Pair, eff_dmax: float
    ) -> List[Tuple[Pair, float]]:
        entries1 = restrict_entries(
            node1.entries, pair.item2.rect, self.metric, eff_dmax
        )
        entries2 = restrict_entries(
            node2.entries, pair.item1.rect, self.metric, eff_dmax
        )
        self.counters.add(
            "bound_calcs", len(node1.entries) + len(node2.entries)
        )

        candidates: List[Tuple[Pair, float]] = []
        for e1, e2 in sweep_pairs(entries1, entries2, eff_dmax):
            child1 = self._make_child_item(node1.level, e1)
            if self._skip_child(1, child1):
                continue
            child2 = self._make_child_item(node2.level, e2)
            child_pair = Pair(child1, child2, 0.0)
            d = self.distance.mindist(child1, child2)
            child_pair.distance = d
            if not self._range_admits(child_pair, d, eff_dmax):
                continue
            if self.pair_filter is not None and not self.pair_filter(
                child_pair
            ):
                self.counters.add("pruned_filter")
                continue
            candidates.append((child_pair, d))
        return candidates

    def _expand_both_vector(
        self, node1: Any, node2: Any, pair: Pair, eff_dmax: float
    ) -> Optional[List[Tuple[Pair, float]]]:
        """Batch-kernel simultaneous expansion (restriction + sweep).

        The search-space restriction becomes one MINDIST kernel call
        per node, the plane sweep runs in index space with the exact
        scalar yield order (:func:`sweep_index_pairs`), and the
        per-sweep-pair MINDIST becomes one gathered pairwise kernel
        call.  Counter charges match the scalar path element for
        element; ``None`` falls back to scalar.
        """
        soa_of1 = getattr(node1, "entries_soa", None)
        soa_of2 = getattr(node2, "entries_soa", None)
        if soa_of1 is None or soa_of2 is None:
            return None
        s1 = soa_of1()
        s2 = soa_of2()
        if s1 is None or s2 is None:
            return None
        object_path = (
            node1.level == 0 and node2.level == 0
            and self.leaf_mode == DIRECT
        )
        if object_path and (s1.pts is None or s2.pts is None):
            return None

        kern = self._kern
        np = kern.np
        dist = self.distance
        entries1, entries2 = node1.entries, node2.entries
        n1, n2 = len(entries1), len(entries2)

        # Search-space restriction (the scalar path charges the two
        # nodes' full entry counts as bound_calcs whether or not a
        # finite bound makes the restriction effective; so does this).
        r1, r2 = pair.item1.rect, pair.item2.rect
        if eff_dmax == _INF or n1 == 0:
            idx1 = list(range(n1))
        else:
            dm = kern.mindist(s1.lo, s1.hi, r2.lo, r2.hi)
            idx1 = np.flatnonzero(np.less_equal(dm, eff_dmax)).tolist()
        if eff_dmax == _INF or n2 == 0:
            idx2 = list(range(n2))
        else:
            dm = kern.mindist(s2.lo, s2.hi, r1.lo, r1.hi)
            idx2 = np.flatnonzero(np.less_equal(dm, eff_dmax)).tolist()
        self.counters.add("bound_calcs", n1 + n2)
        if not idx1 or not idx2:
            return []

        # Plane sweep in index space, exactly the scalar yield order.
        lo1x = s1.lo[idx1, 0].tolist()
        hi1x = s1.hi[idx1, 0].tolist()
        lo2x = s2.lo[idx2, 0].tolist()
        hi2x = s2.hi[idx2, 0].tolist()
        level1, level2 = node1.level, node2.level
        hooks_default = self._hooks_default
        children_all1 = self._node_children(s1, entries1, level1)
        children_all2 = self._node_children(s2, entries2, level2)
        children1: dict = {}
        ii: List[int] = []
        jj: List[int] = []
        for a, b in sweep_index_pairs(lo1x, hi1x, lo2x, hi2x, eff_dmax):
            if not hooks_default:
                child1 = children1.get(a)
                if child1 is None:
                    if children_all1 is not None:
                        child1 = children_all1[idx1[a]]
                    else:
                        child1 = self._make_child_item(
                            level1, entries1[idx1[a]]
                        )
                    children1[a] = child1
                if self._skip_child(1, child1):
                    continue
            ii.append(a)
            jj.append(b)
        if not ii:
            return []

        m = len(ii)
        g1 = np.asarray(idx1, dtype=np.intp)[ii]
        g2 = np.asarray(idx2, dtype=np.intp)[jj]
        glo1, ghi1 = s1.lo[g1], s1.hi[g1]
        glo2, ghi2 = s2.lo[g2], s2.hi[g2]
        if object_path:
            d = kern.point_distance(s1.pts[g1], s2.pts[g2])
            dist._dist_calcs.add(m)
        else:
            d = kern.mindist(glo1, ghi1, glo2, ghi2)
            dist._bound_calcs.add(m)

        alive = self._range_admits_batch(
            kern, d, eff_dmax, object_path,
            glo1, ghi1, None, 0, lo2=glo2, hi2=ghi2,
        )

        candidates: List[Tuple[Pair, float]] = []
        pair_filter = self.pair_filter
        d_list = d.tolist()
        indices = range(m) if alive is None else alive.tolist()
        for t in indices:
            a = ii[t]
            if children_all1 is not None:
                child1 = children_all1[idx1[a]]
            else:
                child1 = children1.get(a)
                if child1 is None:
                    child1 = self._make_child_item(
                        level1, entries1[idx1[a]]
                    )
                    children1[a] = child1
            if children_all2 is not None:
                child2 = children_all2[idx2[jj[t]]]
            else:
                child2 = self._make_child_item(
                    level2, entries2[idx2[jj[t]]]
                )
            di = d_list[t]
            child_pair = Pair(child1, child2, di)
            if pair_filter is not None and not pair_filter(child_pair):
                self.counters.add("pruned_filter")
                continue
            candidates.append((child_pair, di))
        return candidates

    def _push_candidates(
        self, pair: Pair, side: int,
        candidates: List[Tuple[Pair, float]],
    ) -> None:
        """Run the d_max hooks over the candidates, then enqueue them.

        When neither the estimator nor the consistency checker needs a
        per-pair callback, the push is bulk: keys are produced in
        candidate order (fixing the identical tie-break sequence) and
        handed to the queue's ``push_many``, with the insert counter
        charged in one add and the queue-size peak observed once at the
        final (maximal) size -- totals and peaks equal the scalar
        per-push accounting exactly.
        """
        filtered = self._filter_candidates(pair, side, candidates)
        if not filtered:
            return
        if (
            not self._bulk_push_ok
            or self._estimator is not None
            or self.distance.check_consistency
        ):
            for child_pair, d in filtered:
                self.distance.check_child(pair, d)
                self._push(child_pair)
            return
        keys = self._keys
        if type(keys) is KeyMaker:
            # One expansion's candidates share kind/level structure, so
            # the key's discrete components are computed once for the
            # whole batch (bit-identical to per-pair key() calls).
            if self.descending:
                dists = [self._key_distance(cp) for cp, _d in filtered]
            else:
                dists = [cp.distance for cp, _d in filtered]
            batch_keys = keys.key_batch(filtered[0][0], dists)
            items = [
                (k, cp)
                for k, (cp, _d) in zip(batch_keys, filtered)
            ]
        else:
            items = [
                (keys.key(child_pair, self._key_distance(child_pair)),
                 child_pair)
                for child_pair, _d in filtered
            ]
        self._queue.push_many(items)
        self._c_queue_inserts.add(len(items))
        self._c_queue_size.observe(len(self._queue))

    def _range_admits(self, child_pair: Pair, d: float,
                      eff_dmax: float) -> bool:
        if not self.descending and d > eff_dmax:
            self._c_pruned_range.add()
            return False
        if self.min_distance > 0.0:
            upper = self.distance.maxdist(
                child_pair.item1, child_pair.item2
            )
            if upper < self.min_distance:
                self._c_pruned_range.add()
                return False
        if self.descending:
            # Farthest-first: a pair whose upper bound is below the
            # minimum distance can never qualify (handled above); a
            # finite max_distance still prunes on the lower bound.
            if d > self.max_distance:
                self._c_pruned_range.add()
                return False
        return True

    # ------------------------------------------------------------------
    # queue plumbing
    # ------------------------------------------------------------------

    def _key_distance(self, pair: Pair) -> float:
        if self.descending and not pair.is_result:
            return self.distance.estimation_maxdist(pair.item1, pair.item2)
        return pair.distance

    def _count_lower_bound(self, side: int, item: Item) -> int:
        if item.kind != NODE:
            return 1
        tree = self._tree(side)
        if item.node_id == tree.root_id:
            return 1
        if self.aggressive:
            return max(1, int(tree.avg_subtree_count(item.level)))
        return tree.min_subtree_count(item.level)

    def _offer_estimator(self, pair: Pair, d: float) -> None:
        if self._estimator is None:
            return
        # For resolved object/object pairs the exact distance is its
        # own d_max; no second distance computation is needed.
        if pair.is_result:
            est_dmax = pair.distance
        else:
            est_dmax = self.distance.estimation_maxdist(
                pair.item1, pair.item2
            )
        count = self._estimator_count(pair)
        self._estimator.offer(pair, d, est_dmax, count)

    def _estimator_count(self, pair: Pair) -> int:
        return (
            self._count_lower_bound(1, pair.item1)
            * self._count_lower_bound(2, pair.item2)
        )

    def _push(self, pair: Pair) -> None:
        key_distance = self._key_distance(pair)
        self._queue.push(self._keys.key(pair, key_distance), pair)
        self._c_queue_inserts.add()
        self._c_queue_size.observe(len(self._queue))
        self._offer_estimator(pair, pair.distance)

    def _push_resolved(self, pair: Pair) -> None:
        # A resolved object/object pair re-enqueued with its exact
        # distance; it participates in estimation like any other pair.
        self._push(pair)

    # ------------------------------------------------------------------
    # restart path for the aggressive estimator
    # ------------------------------------------------------------------

    def _should_restart(self) -> bool:
        return (
            self._estimator is not None
            and self._estimator.trimmed
            and self.aggressive
            and self.max_pairs is not None
            and self._produced < self.max_pairs
        )

    def _restart(self) -> None:
        """The aggressive estimator over-pruned: replay without it.

        The priority queue holds no useful information at this point
        (paper Section 2.2.4), so the query restarts from the root pair
        with estimation disabled, suppressing the results already
        delivered.
        """
        self.counters.add("restarts")
        self.obs.event("join.restart", value=float(self._produced))
        self._to_skip += self._produced
        self.estimate = False
        with self.obs.span("join.init"):
            self._init_state()

    # ------------------------------------------------------------------
    # progress introspection
    # ------------------------------------------------------------------

    def progress_signals(self) -> Dict[str, Any]:
        """Raw progress facts for :class:`repro.util.telemetry
        .ProgressEstimator`.

        A pure probe, safe to call between ``next()`` calls at any
        frequency: it never pops, promotes queue tiers, reads disk
        pages, or charges counters, so the counter bit-identity and
        bench gates are untouched.  ``head_distance`` is the actual
        (unsigned) queue-head distance when the head is in memory, a
        band lower bound otherwise, ``None`` when unknown;
        ``max_distance`` is the *effective* ``dmax`` (the estimator's
        trimmed bound when active).
        """
        queue = self._queue
        head = queue.head_distance() if queue is not None else None
        if head is not None and self.descending:
            head = -head
        queue_len = len(queue) if queue is not None else 0
        done = (
            (self.max_pairs is not None
             and self._produced >= self.max_pairs)
            or self._complete()
            or (queue_len == 0 and not self._should_restart())
        )
        return {
            "operator": type(self).__name__,
            "produced": self._produced,
            "max_pairs": self.max_pairs,
            "head_distance": head,
            "min_distance": self.min_distance,
            "max_distance": self._effective_dmax(),
            "descending": self.descending,
            "queue_len": queue_len,
            "occupancy": (
                queue.occupancy() if queue is not None else {}
            ),
            "done": done,
        }

    # ------------------------------------------------------------------
    # suspendable cursor: save / load
    # ------------------------------------------------------------------

    @staticmethod
    def _tree_fingerprint(tree: RTreeBase) -> Tuple:
        """Identity of an input tree, checked at :meth:`load` time.

        Node ids are assigned deterministically by the builders, so the
        (class, dim, size, root id) quadruple pins the cursor to the
        exact tree shape its queued node ids refer to.
        """
        return (type(tree).__name__, tree.dim, len(tree), tree.root_id)

    def save(self) -> dict:
        """Snapshot the complete execution state as a picklable cursor.

        The join's entire state is its priority queue (the paper's
        defining property), so the cursor is the queue snapshot plus a
        handful of scalars: the spec, the tie-break sequence position,
        restart bookkeeping, the estimator's ``M`` structure, and a
        full counter snapshot.  Only valid between ``next()`` calls.

        A ``pair_filter`` that does not pickle (e.g. a closure composed
        by the query planner) is stripped from the saved spec and
        flagged; :meth:`load` then requires it re-supplied.
        """
        spec = self.spec
        has_filter = spec.pair_filter is not None
        if has_filter:
            try:
                pickle.dumps(spec.pair_filter, pickle.HIGHEST_PROTOCOL)
            except Exception:
                spec = spec.evolve(pair_filter=None)
        return {
            "format": CURSOR_FORMAT,
            "version": CURSOR_VERSION,
            "class": type(self).__name__,
            "spec": spec,
            "has_pair_filter": has_filter,
            "check_consistency": self.distance.check_consistency,
            "trees": (
                self._tree_fingerprint(self.tree1),
                self._tree_fingerprint(self.tree2),
            ),
            "estimate": self.estimate,
            "max_pairs": self.max_pairs,
            "produced": self._produced,
            "to_skip": self._to_skip,
            "seq": self._keys.seq,
            "queue": self._queue.state(),
            "estimator": (
                self._estimator.state()
                if self._estimator is not None else None
            ),
            "counters": self.counters.full_snapshot(),
            "extra": self._state_extra(),
        }

    @classmethod
    def load(
        cls,
        state: dict,
        tree1: RTreeBase,
        tree2: RTreeBase,
        *,
        counters: Optional[CounterRegistry] = None,
        observer: Optional[Observer] = None,
        pair_filter: Optional[Any] = None,
    ) -> "IncrementalDistanceJoin":
        """Rebuild a suspended join from a :meth:`save` cursor.

        ``tree1``/``tree2`` must be the trees the cursor was taken
        against (same class, dimensionality, size, and root id) --
        queued node ids are meaningless otherwise.

        With ``counters`` supplied (e.g. the registry the suspended
        run charged), the resumed run continues those totals exactly:
        restoring is counter-silent.  Without it a fresh registry is
        created and primed with the cursor's counter snapshot, so the
        final totals still match an uninterrupted run.

        ``pair_filter`` re-supplies a filter that could not be
        serialized; :class:`~repro.errors.CursorError` is raised when
        the cursor needs one and none is given.
        """
        if not isinstance(state, dict) or state.get("format") != \
                CURSOR_FORMAT:
            raise CursorError("not a join cursor")
        if state.get("version") != CURSOR_VERSION:
            raise CursorError(
                f"unsupported cursor version {state.get('version')!r} "
                f"(this build reads version {CURSOR_VERSION})"
            )
        if state.get("class") != cls.__name__:
            raise CursorError(
                f"cursor was saved by {state.get('class')!r}; "
                f"load it with that class, not {cls.__name__}"
            )
        expected = (
            cls._tree_fingerprint(tree1), cls._tree_fingerprint(tree2)
        )
        if tuple(map(tuple, state["trees"])) != expected:
            raise CursorError(
                "cursor does not match the supplied trees: saved "
                f"{state['trees']!r}, got {expected!r}"
            )
        spec = state["spec"]
        if pair_filter is not None:
            spec = spec.evolve(pair_filter=pair_filter)
        elif state["has_pair_filter"] and spec.pair_filter is None:
            raise CursorError(
                "the cursor's pair filter was not serializable; "
                "re-supply it via pair_filter="
            )
        registry = counters if counters is not None else CounterRegistry()
        join = cls.__new__(cls)
        join._suspended_init = True
        try:
            join.__init__(
                tree1, tree2, spec,
                counters=registry,
                observer=observer,
                check_consistency=state["check_consistency"],
            )
        finally:
            join.__dict__.pop("_suspended_init", None)
        join._restore_state(state)
        if counters is None:
            # Prime the fresh registry with the suspended run's totals
            # and peaks so the resumed run's final numbers equal an
            # uninterrupted run's.
            snap = state["counters"]
            for name, value in snap.values.items():
                registry.counter(name).value = value
            for name, peak in snap.peaks.items():
                counter = registry.counter(name)
                if peak > counter.peak:
                    counter.peak = peak
        return join

    def _restore_state(self, state: dict) -> None:
        """Overwrite execution state with a :meth:`save` snapshot."""
        self.estimate = state["estimate"]
        self.max_pairs = state["max_pairs"]
        self._produced = state["produced"]
        self._to_skip = state["to_skip"]
        self._keys = KeyMaker(self.tie_break, descending=self.descending)
        self._keys.restore_seq(state["seq"])
        self._queue = queue_from_state(
            state["queue"],
            heap_class=self.heap_class,
            counters=self.counters,
            observer=self.obs if self.obs.enabled else None,
        )
        est_state = state["estimator"]
        if est_state is None:
            self._estimator = None
        else:
            self._estimator = self._make_estimator()
            if self._estimator is None:
                raise CursorError(
                    "cursor carries estimator state but the restored "
                    "spec disables estimation"
                )
            self._estimator.restore_state(est_state)
        self._restore_extra(state["extra"])

    def _state_extra(self) -> Any:
        """Subclass hook: extra picklable state for :meth:`save`."""
        return None

    def _restore_extra(self, extra: Any) -> None:
        """Subclass hook: restore what :meth:`_state_extra` captured."""

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(policy={self.node_policy}, "
            f"tie={self.tie_break}, produced={self._produced})"
        )
