"""Reverse (farthest-first) variants (paper Section 2.2.5 / 2.3).

:class:`ReverseDistanceJoin` reports object pairs in *decreasing*
distance order: the queue is ordered on the negated distance, and
every pair except object/object uses its ``d_max`` function as the key
(an upper bound on the distances of the object pairs it generates,
which is consistent in the reversed sense: expanding a pair can only
lower the bound).

:class:`ReverseDistanceSemiJoin` reports, for each outer object, its
*farthest* inner object, pairs in decreasing distance order -- the
paper notes this is the natural reverse semi-join (the first pair
``(o1, o2)`` of a reverse join is o1's farthest partner); the
"nearest, reported in reverse order" reading would require computing
the last such pair and is dismissed as extremely inefficient.
"""

from __future__ import annotations

from typing import Optional

from repro.core.distance_join import IncrementalDistanceJoin
from repro.core.pairs import NODE, Item, Pair
from repro.core.spec import JoinSpec
from repro.rtree.base import RTreeBase
from repro.util.bitset import Bitset


class ReverseDistanceJoin(IncrementalDistanceJoin):
    """Distance join producing the farthest pairs first.

    Accepts the parameters of :class:`IncrementalDistanceJoin` except
    ``descending`` (forced True) and the estimator options (the
    maximum-distance estimation of Section 2.2.4 does not apply to the
    reversed order; a minimum-distance analogue is future work, as in
    the paper).
    """

    def __init__(
        self,
        tree1: RTreeBase,
        tree2: RTreeBase,
        spec: Optional[JoinSpec] = None,
        **kwargs,
    ) -> None:
        kwargs["descending"] = True
        if spec is None:
            kwargs.setdefault("estimate", False)
        super().__init__(tree1, tree2, spec, **kwargs)


class ReverseDistanceSemiJoin(ReverseDistanceJoin):
    """For each outer object, its farthest inner object, farthest pairs
    first.

    Filtering uses the same bit-string seen-set as the forward
    semi-join: once ``(o1, o2)`` is reported, every other pair
    containing ``o1`` has a smaller distance and is suppressed, both
    when popped and when generated.
    """

    def __init__(
        self,
        tree1: RTreeBase,
        tree2: RTreeBase,
        spec: Optional[JoinSpec] = None,
        **kwargs,
    ) -> None:
        self._seen: Bitset = Bitset(0)
        super().__init__(tree1, tree2, spec, **kwargs)

    def _init_state(self) -> None:
        self._seen = Bitset(max(1, len(self.tree1)))
        super()._init_state()

    def _complete(self) -> bool:
        return len(self._seen) >= len(self.tree1)

    def _skip_result(self, pair: Pair) -> bool:
        if pair.item1.oid in self._seen:
            self.counters.add("pruned_seen")
            return True
        return False

    def _skip_popped(self, pair: Pair) -> bool:
        item1 = pair.item1
        if item1.kind != NODE and item1.oid in self._seen:
            self.counters.add("pruned_seen")
            return True
        return False

    def _skip_child(self, side: int, child: Item) -> bool:
        if side == 1 and child.kind != NODE and child.oid in self._seen:
            self.counters.add("pruned_seen")
            return True
        return False

    def _on_report(self, pair: Pair) -> None:
        self._seen.add(pair.item1.oid)

    def _state_extra(self):
        return {"seen": self._seen.state()}

    def _restore_extra(self, extra) -> None:
        self._seen = Bitset.from_state(extra["seen"])
