"""Maximum-distance estimation from a bound on the number of result
pairs (paper Sections 2.2.4 and 2.3).

When the caller promises to consume at most ``K`` result pairs, the
algorithm can shrink the effective maximum distance ``D_max`` on the
fly: it maintains a set ``M`` of queue pairs whose generated object
pairs are guaranteed to fall inside the current ``[D_min, D_max]``
range, together with a lower bound on how many object pairs each can
generate.  As soon as the pairs in ``M`` can account for more than
``K`` object pairs, the entries with the largest ``d_max`` are evicted
and ``D_max`` drops to the evicted value -- everything farther can
never be needed.

``M`` is realized as an :class:`AddressableMaxQueue` (the paper's
``Q_M`` priority queue plus hash table).

Two variants exist:

- :class:`JoinEstimator` -- for the distance join; ``M`` is keyed by
  the *pair*, counts multiply the two subtree cardinalities, and a pair
  leaves ``M`` when it is dequeued from the main queue.
- :class:`SemiJoinEstimator` -- for the distance semi-join; ``M`` is
  keyed by the pair's *first item* (each outer object yields one result
  at most), counts use only the first item's subtree, an existing entry
  is replaced only by one with a smaller ``d_max``, and a node may not
  enter ``M`` after it has been expanded (its descendants may already
  be counted).

Subtree-cardinality bounds come from the tree's minimum fan-out
(*safe*: ``D_max`` never drops below the true K-th distance) or, in
*aggressive* mode, from average occupancy, which may over-trim and
force the driver to restart the query (paper's restart caveat,
signalled via :class:`repro.errors.RestartRequired`).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.heap import AddressableMaxQueue
from repro.core.pairs import Pair
from repro.util.counters import CounterRegistry

_INF = float("inf")


class _EstimatorBase:
    """State shared by the two estimator variants."""

    def __init__(
        self,
        k: int,
        dmin: float,
        dmax: float,
        counters: CounterRegistry,
        aggressive: bool = False,
    ) -> None:
        self.k = k
        self.dmin = dmin
        self.dmax = dmax
        self.counters = counters
        self.aggressive = aggressive
        self.trimmed = False
        self._m: AddressableMaxQueue = AddressableMaxQueue()
        self._total = 0

    @property
    def current_dmax(self) -> float:
        """The current (possibly estimator-reduced) maximum distance."""
        return self.dmax

    def _eligible(self, mindist: float, est_dmax: float) -> bool:
        # All object pairs generated from an eligible pair are certain
        # to land inside [dmin, current dmax].
        return mindist >= self.dmin and est_dmax <= self.dmax

    @staticmethod
    def _count_of(value) -> int:
        """Extract the generation count from a stored M value."""
        return value

    def _trim(self) -> None:
        # Evict largest-d_max entries while the remainder still covers
        # the k pairs we owe; D_max drops to the last evicted d_max.
        while self._m:
            __, est_dmax, value = self._m.peek_max()
            count = self._count_of(value)
            if self._total - count < self.k:
                break
            self._m.pop_max()
            self._total -= count
            self.dmax = est_dmax
            self.trimmed = True
            self.counters.add("estimator_trims")

    def on_report(self) -> None:
        """One result pair was reported: one fewer still owed."""
        if self.k > 0:
            self.k -= 1
        self._trim()

    @property
    def tracked_pairs(self) -> int:
        """Number of entries currently in M (introspection/testing)."""
        return len(self._m)

    @property
    def tracked_total(self) -> int:
        """Sum of generation lower bounds over M (introspection)."""
        return self._total

    # ------------------------------------------------------------------
    # suspendable-cursor support
    # ------------------------------------------------------------------

    def state(self) -> dict:
        """A picklable snapshot of the estimator (counters excluded).

        ``M`` is carried verbatim via
        :meth:`~repro.core.heap.AddressableMaxQueue.state` -- its
        insertion counter breaks priority ties, so the lazy-deletion
        structure must survive suspension for trims to replay
        identically.
        """
        return {
            "k": self.k,
            "dmin": self.dmin,
            "dmax": self.dmax,
            "aggressive": self.aggressive,
            "trimmed": self.trimmed,
            "m": self._m.state(),
            "total": self._total,
        }

    def restore_state(self, state: dict) -> None:
        """Overwrite this estimator with a :meth:`state` snapshot.

        The counters reference set at construction is kept: snapshots
        never carry a registry.
        """
        self.k = state["k"]
        self.dmin = state["dmin"]
        self.dmax = state["dmax"]
        self.aggressive = state["aggressive"]
        self.trimmed = state["trimmed"]
        self._m.restore_state(state["m"])
        self._total = state["total"]


class JoinEstimator(_EstimatorBase):
    """Maximum-distance estimation for the distance join."""

    def offer(
        self, pair: Pair, mindist: float, est_dmax: float, count: int
    ) -> None:
        """Consider a pair just inserted into the main queue.

        ``count`` is the lower bound on the number of object pairs the
        pair can generate (product of the two subtree bounds).
        """
        if not self._eligible(mindist, est_dmax):
            return
        key = pair.identity()
        existing = self._m.get(key)
        if existing is not None:
            self._total -= existing[1]
        self._m.insert(key, est_dmax, count)
        self._total += count
        self._trim()

    def on_dequeue(self, pair: Pair) -> None:
        """The pair left the main queue; its children will re-offer."""
        key = pair.identity()
        existing = self._m.get(key)
        if existing is not None:
            self._m.delete(key)
            self._total -= existing[1]


class SemiJoinEstimator(_EstimatorBase):
    """Maximum-distance estimation for the distance semi-join.

    ``M`` entries are keyed by the first item; the stored value is
    ``(count, second-item identity)`` so that dequeues of the exact
    pair can be recognized.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._processed_first: set = set()

    def state(self) -> dict:
        out = super().state()
        out["processed_first"] = set(self._processed_first)
        return out

    def restore_state(self, state: dict) -> None:
        super().restore_state(state)
        self._processed_first = set(state["processed_first"])

    @staticmethod
    def _count_of(value) -> int:
        # M values are (count, second-item identity) tuples here.
        return value[0]

    def offer(
        self, pair: Pair, mindist: float, est_dmax: float, count: int
    ) -> None:
        """Consider a pair; ``count`` bounds the objects under item1."""
        if not self._eligible(mindist, est_dmax):
            return
        first = pair.item1.identity()
        if pair.item1.is_node and first in self._processed_first:
            # The node was expanded before: its descendants may already
            # be represented in M, and re-adding it would double-count.
            return
        existing = self._m.get(first)
        if existing is not None:
            if existing[0] <= est_dmax:
                return  # keep the tighter existing entry
            self._total -= existing[1][0]
        self._m.insert(first, est_dmax, (count, pair.item2.identity()))
        self._total += count
        self._trim()

    def on_dequeue(self, pair: Pair) -> None:
        """Remove the exact pair from M when it leaves the main queue."""
        first = pair.item1.identity()
        existing = self._m.get(first)
        if existing is not None and existing[1][1] == pair.item2.identity():
            self._m.delete(first)
            self._total -= existing[1][0]

    def on_expand_first(self, pair: Pair) -> None:
        """Item1 (a node) is being expanded: bar it from M forever and
        drop any M entry keyed by it (its children take over)."""
        first = pair.item1.identity()
        self._processed_first.add(first)
        existing = self._m.get(first)
        if existing is not None:
            self._m.delete(first)
            self._total -= existing[1][0]

    def on_report_first(self, first_identity: Tuple) -> None:
        """A result for this outer object was reported: purge its M
        entry and decrement the owed-pair count."""
        existing = self._m.get(first_identity)
        if existing is not None:
            self._m.delete(first_identity)
            self._total -= existing[1][0]
        self.on_report()


def make_join_estimator(
    k: Optional[int],
    dmin: float,
    dmax: float,
    counters: CounterRegistry,
    aggressive: bool = False,
) -> Optional[JoinEstimator]:
    """A :class:`JoinEstimator`, or None when no pair bound is given."""
    if k is None:
        return None
    return JoinEstimator(k, dmin, dmax, counters, aggressive=aggressive)


def make_semijoin_estimator(
    k: Optional[int],
    dmin: float,
    dmax: float,
    counters: CounterRegistry,
    aggressive: bool = False,
) -> Optional[SemiJoinEstimator]:
    """A :class:`SemiJoinEstimator`, or None when no bound is given."""
    if k is None:
        return None
    return SemiJoinEstimator(k, dmin, dmax, counters, aggressive=aggressive)
