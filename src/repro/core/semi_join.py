"""The incremental distance semi-join (paper Section 2.3).

The distance semi-join reports, for each object of the outer relation
(``tree1``), its nearest object in the inner relation (``tree2``) --
pairs still arrive in order of increasing distance, so the full result
is the discrete-Voronoi clustering the paper describes.

Built on :class:`IncrementalDistanceJoin` with two families of
strategies evaluated in Section 4.2:

*Filter placement* -- where pairs whose outer object was already
reported are discarded:

- ``"outside"``: the join runs unchanged and duplicates are filtered
  at the output (the paper's "Outside");
- ``"inside1"``: popped pairs whose first item is an already-seen
  object (or obr) are discarded before any further work ("Inside1");
- ``"inside2"``: additionally, such children are never enqueued during
  node expansion ("Inside2").

*d_max exploitation* -- pruning pairs that cannot contain any outer
object's nearest neighbour, using the upper-bound distances:

- ``"none"``: no d_max pruning;
- ``"local"``: while expanding a node, entries whose MINDIST to the
  fixed outer item exceeds the smallest d_max among the sibling
  candidates are dropped ("Local");
- ``"global_nodes"``: additionally, the smallest d_max ever observed
  for each outer *node* is remembered and applied to future pairs
  ("GlobalNodes");
- ``"global_all"``: the same for outer objects too ("GlobalAll").

The seen-set ``S_A`` is the bit string of Section 3.2
(:class:`repro.util.Bitset`).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from typing import Optional

from repro.core.distance_join import IncrementalDistanceJoin
from repro.core.estimate import make_semijoin_estimator
from repro.core.pairs import NODE, Item, Pair
from repro.core.spec import (  # noqa: F401  (re-exported for back-compat)
    DMAX_GLOBAL_ALL,
    DMAX_GLOBAL_NODES,
    DMAX_LOCAL,
    DMAX_NONE,
    DMAX_STRATEGIES,
    FILTER_STRATEGIES,
    INSIDE1,
    INSIDE2,
    OUTSIDE,
    JoinSpec,
)
from repro.rtree.base import RTreeBase
from repro.util.bitset import Bitset


class IncrementalDistanceSemiJoin(IncrementalDistanceJoin):
    """Incremental distance semi-join of ``tree1`` with ``tree2``.

    Accepts every parameter of :class:`IncrementalDistanceJoin` plus:

    Parameters
    ----------
    filter_strategy:
        One of ``"outside"``, ``"inside1"``, ``"inside2"``.
    dmax_strategy:
        One of ``"none"``, ``"local"``, ``"global_nodes"``,
        ``"global_all"``.  The paper's d_max strategies all build on
        Inside2 filtering, so any value other than ``"none"`` requires
        ``filter_strategy="inside2"``.

    Both are :class:`~repro.core.spec.JoinSpec` fields, so they may
    arrive via a spec or as keywords; the combination rules live in
    :meth:`JoinSpec.validate`, which also rejects ``descending`` here
    (use :class:`~repro.core.reverse.ReverseDistanceSemiJoin`).
    """

    _spec_semi_join = True

    def __init__(
        self,
        tree1: RTreeBase,
        tree2: RTreeBase,
        spec: Optional[JoinSpec] = None,
        **kwargs,
    ) -> None:
        # Set before super().__init__, which calls _init_state().
        self._seen: Bitset = Bitset(0)
        self._bounds: Dict[Tuple, float] = {}
        super().__init__(tree1, tree2, spec, **kwargs)
        self._c_pruned_seen = self.counters.counter("pruned_seen")
        self._c_pruned_dmax = self.counters.counter("pruned_dmax")

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------

    def _init_state(self) -> None:
        self._seen = Bitset(max(1, len(self.tree1)))
        self._bounds = {}
        super()._init_state()

    def _make_estimator(self):
        if not self.estimate or self.max_pairs is None:
            return None
        return make_semijoin_estimator(
            self.max_pairs,
            self.min_distance,
            self.max_distance,
            self.counters,
            aggressive=self.aggressive,
        )

    def _estimator_count(self, pair: Pair) -> int:
        # Each outer object contributes at most one semi-join result,
        # so only item1's subtree bounds the generated pairs.
        return self._count_lower_bound(1, pair.item1)

    def _complete(self) -> bool:
        return len(self._seen) >= len(self.tree1)

    # ------------------------------------------------------------------
    # seen-set filtering
    # ------------------------------------------------------------------

    def _skip_result(self, pair: Pair) -> bool:
        if pair.item1.oid in self._seen:
            self._c_pruned_seen.add()
            return True
        return False

    def _skip_popped(self, pair: Pair) -> bool:
        item1 = pair.item1
        if (
            self.filter_strategy in (INSIDE1, INSIDE2)
            and item1.kind != NODE
            and item1.oid in self._seen
        ):
            self._c_pruned_seen.add()
            return True
        if self.dmax_strategy in (DMAX_GLOBAL_NODES, DMAX_GLOBAL_ALL):
            bound = self._bounds.get(item1.identity())
            if bound is not None and pair.distance > bound:
                self._c_pruned_dmax.add()
                return True
        return False

    def _skip_child(self, side: int, child: Item) -> bool:
        if (
            side == 1
            and self.filter_strategy == INSIDE2
            and child.kind != NODE
            and child.oid in self._seen
        ):
            self._c_pruned_seen.add()
            return True
        return False

    def _on_report(self, pair: Pair) -> None:
        self._seen.add(pair.item1.oid)
        if self.obs.enabled:
            # Coverage timeline: how fast the semi-join saturates the
            # outer relation (sampled via the observer's knob).
            self.obs.gauge("semijoin.seen", float(len(self._seen)))
        if self._estimator is not None:
            self._estimator.on_report_first(pair.item1.identity())

    def _on_expand(self, pair: Pair, side: int) -> None:
        if side == 1 and self._estimator is not None and pair.item1.is_node:
            self._estimator.on_expand_first(pair)

    # ------------------------------------------------------------------
    # d_max pruning
    # ------------------------------------------------------------------

    def _tracks_global(self, item: Item) -> bool:
        if self.dmax_strategy == DMAX_GLOBAL_ALL:
            return True
        if self.dmax_strategy == DMAX_GLOBAL_NODES:
            return item.kind == NODE
        return False

    def _filter_candidates(
        self, pair: Pair, side: int,
        candidates: List[Tuple[Pair, float]],
    ) -> List[Tuple[Pair, float]]:
        if self.dmax_strategy == DMAX_NONE or not candidates:
            return candidates

        # Resolved object/object pairs already carry their exact
        # distance, which is its own d_max; only bound-bearing pairs
        # need a MINMAXDIST/MAXDIST evaluation.
        scored = [
            (
                child_pair,
                d,
                d if child_pair.is_result
                else self.distance.estimation_maxdist(
                    child_pair.item1, child_pair.item2
                ),
            )
            for child_pair, d in candidates
        ]

        # Local bounds: the smallest d_max among the candidates sharing
        # the same outer item.  Meaningful when the inner node was
        # expanded (all candidates share item1) and, for the
        # simultaneous policy, within each item1 group.
        local: Dict[Tuple, float] = {}
        for child_pair, __, est_dmax in scored:
            key = child_pair.item1.identity()
            best = local.get(key)
            if best is None or est_dmax < best:
                local[key] = est_dmax

        use_global = self.dmax_strategy in (
            DMAX_GLOBAL_NODES, DMAX_GLOBAL_ALL
        )
        kept: List[Tuple[Pair, float]] = []
        for child_pair, d, est_dmax in scored:
            key = child_pair.item1.identity()
            bound = local[key]
            if use_global and self._tracks_global(child_pair.item1):
                stored = self._bounds.get(key)
                if stored is not None and stored < bound:
                    bound = stored
                new_bound = est_dmax if stored is None else min(
                    stored, est_dmax
                )
                self._bounds[key] = new_bound
            if d > bound:
                self._c_pruned_dmax.add()
                continue
            kept.append((child_pair, d))
        return kept

    # ------------------------------------------------------------------
    # suspendable cursor
    # ------------------------------------------------------------------

    def _state_extra(self):
        return {
            "seen": self._seen.state(),
            "bounds": dict(self._bounds),
        }

    def _restore_extra(self, extra) -> None:
        self._seen = Bitset.from_state(extra["seen"])
        self._bounds = dict(extra["bounds"])
