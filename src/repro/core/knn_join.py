"""k-nearest-neighbour join: the natural generalization of the
distance semi-join.

The paper's distance semi-join reports, for each outer object, its
single nearest inner object.  Modern spatial engines generalize this
to the *k-NN join*: each outer object is paired with its ``k`` nearest
inner objects, pairs still reported globally in increasing distance
(so the operator stays incremental and pipelineable).  With ``k = 1``
this class is exactly the distance semi-join.

The paper's pruning machinery generalizes soundly:

- the seen *bit string* becomes a per-object counter: pairs whose
  outer object already has ``k`` partners are filtered (Outside /
  Inside1 / Inside2 placements unchanged);
- the d_max bounds generalize from the minimum to the k-th smallest:
  if ``k`` sibling candidate pairs ``(i1, e_1..e_k)`` exist, every
  outer object under ``i1`` has ``k`` partners within the k-th
  smallest ``d_max`` (each non-empty ``e_j`` contributes at least one
  distinct partner), so a pair whose MINDIST exceeds that bound can
  contain none of the k-NN results;
- the maximum-distance estimator's per-pair generation count becomes
  ``count(i1) * min(k, count(i2))``.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from repro.core.pairs import NODE, Item, Pair
from repro.core.spec import JoinSpec
from repro.core.semi_join import (
    DMAX_GLOBAL_ALL,
    DMAX_GLOBAL_NODES,
    DMAX_NONE,
    INSIDE1,
    INSIDE2,
    IncrementalDistanceSemiJoin,
)
from repro.rtree.base import RTreeBase
from repro.util.validation import require


class KNearestNeighborJoin(IncrementalDistanceSemiJoin):
    """For each outer object, its ``k`` nearest inner objects, pairs in
    global distance order.

    Accepts every :class:`IncrementalDistanceSemiJoin` parameter plus
    ``k`` (default 1 = the paper's semi-join).
    """

    def __init__(
        self,
        tree1: RTreeBase,
        tree2: RTreeBase,
        spec: Optional[JoinSpec] = None,
        *,
        k: int = 1,
        **kwargs,
    ) -> None:
        require(k >= 1, "k must be at least 1")
        self.k = k
        self._partner_counts: Dict[int, int] = {}
        self._done_count = 0
        # Per-first-item k smallest d_max values (max-heap via negation)
        # for the global strategies.
        self._bound_lists: Dict[Tuple, List[float]] = {}
        super().__init__(tree1, tree2, spec, **kwargs)

    # ------------------------------------------------------------------
    # state
    # ------------------------------------------------------------------

    def _init_state(self) -> None:
        self._partner_counts = {}
        self._done_count = 0
        self._bound_lists = {}
        super()._init_state()

    def _object_done(self, oid: int) -> bool:
        return self._partner_counts.get(oid, 0) >= self.k

    def _complete(self) -> bool:
        return self._done_count >= len(self.tree1)

    # ------------------------------------------------------------------
    # counter-based filtering (replaces the bitset)
    # ------------------------------------------------------------------

    def _skip_result(self, pair: Pair) -> bool:
        if self._object_done(pair.item1.oid):
            self.counters.add("pruned_seen")
            return True
        return False

    def _skip_popped(self, pair: Pair) -> bool:
        item1 = pair.item1
        if (
            self.filter_strategy in (INSIDE1, INSIDE2)
            and item1.kind != NODE
            and self._object_done(item1.oid)
        ):
            self.counters.add("pruned_seen")
            return True
        if self.dmax_strategy in (DMAX_GLOBAL_NODES, DMAX_GLOBAL_ALL):
            bound = self._global_bound(item1.identity())
            if bound is not None and pair.distance > bound:
                self.counters.add("pruned_dmax")
                return True
        return False

    def _skip_child(self, side: int, child: Item) -> bool:
        if (
            side == 1
            and self.filter_strategy == INSIDE2
            and child.kind != NODE
            and self._object_done(child.oid)
        ):
            self.counters.add("pruned_seen")
            return True
        return False

    def _on_report(self, pair: Pair) -> None:
        oid = pair.item1.oid
        count = self._partner_counts.get(oid, 0) + 1
        self._partner_counts[oid] = count
        if count >= self.k:
            self._done_count += 1
            if self._estimator is not None:
                self._estimator.on_report_first(pair.item1.identity())
                return
        if self._estimator is not None:
            self._estimator.on_report()

    # ------------------------------------------------------------------
    # k-th-smallest d_max bounds
    # ------------------------------------------------------------------

    def _estimator_count(self, pair: Pair) -> int:
        outer = self._count_lower_bound(1, pair.item1)
        inner = self._count_lower_bound(2, pair.item2)
        return outer * min(self.k, inner)

    def _global_bound(self, key: Tuple):
        """The current k-th smallest d_max for ``key`` (None until k
        values have been observed)."""
        values = self._bound_lists.get(key)
        if values is None or len(values) < self.k:
            return None
        return -values[0]  # max of the k smallest

    def _observe_bound(self, key: Tuple, item2: Item,
                       est_dmax: float) -> None:
        # With k >= 2 the k smallest observed d_max values must be
        # witnessed by k *distinct* partners.  Distinct object second
        # items guarantee that (each (i1, o2) pair is generated at most
        # once); a node and one of its descendants do not, so node
        # observations are admitted only for k = 1, where any single
        # bound is valid.
        if self.k > 1 and item2.kind == NODE:
            return
        values = self._bound_lists.setdefault(key, [])
        if len(values) < self.k:
            heapq.heappush(values, -est_dmax)
        elif est_dmax < -values[0]:
            heapq.heapreplace(values, -est_dmax)

    def _filter_candidates(
        self, pair: Pair, side: int,
        candidates: List[Tuple[Pair, float]],
    ) -> List[Tuple[Pair, float]]:
        if self.dmax_strategy == DMAX_NONE or not candidates:
            return candidates

        scored = [
            (
                child_pair,
                d,
                d if child_pair.is_result
                else self.distance.estimation_maxdist(
                    child_pair.item1, child_pair.item2
                ),
            )
            for child_pair, d in candidates
        ]

        # Local bound: the k-th smallest d_max among siblings sharing
        # the same outer item (None when fewer than k siblings).
        local_lists: Dict[Tuple, List[float]] = {}
        for child_pair, __, est_dmax in scored:
            local_lists.setdefault(
                child_pair.item1.identity(), []
            ).append(est_dmax)
        local_bound: Dict[Tuple, float] = {}
        for key, values in local_lists.items():
            if len(values) >= self.k:
                local_bound[key] = heapq.nsmallest(self.k, values)[-1]

        use_global = self.dmax_strategy in (
            DMAX_GLOBAL_NODES, DMAX_GLOBAL_ALL
        )
        kept: List[Tuple[Pair, float]] = []
        for child_pair, d, est_dmax in scored:
            key = child_pair.item1.identity()
            bound = local_bound.get(key)
            if use_global and self._tracks_global(child_pair.item1):
                self._observe_bound(key, child_pair.item2, est_dmax)
                stored = self._global_bound(key)
                if stored is not None and (
                    bound is None or stored < bound
                ):
                    bound = stored
            if bound is not None and d > bound:
                self.counters.add("pruned_dmax")
                continue
            kept.append((child_pair, d))
        return kept

    # ------------------------------------------------------------------
    # suspendable cursor
    # ------------------------------------------------------------------

    def _state_extra(self):
        extra = super()._state_extra()
        extra["k"] = self.k
        extra["partner_counts"] = dict(self._partner_counts)
        extra["done_count"] = self._done_count
        extra["bound_lists"] = {
            key: list(values)
            for key, values in self._bound_lists.items()
        }
        return extra

    def _restore_extra(self, extra) -> None:
        super()._restore_extra(extra)
        self.k = extra["k"]
        self._partner_counts = dict(extra["partner_counts"])
        self._done_count = extra["done_count"]
        self._bound_lists = {
            key: list(values)
            for key, values in extra["bound_lists"].items()
        }
