"""Plane sweep for the "Simultaneous" node-processing policy.

When both nodes of a node/node pair are expanded at once (paper
Section 2.2.2, Figure 4), the cross product of their entries is pruned
with the classic spatial-join optimizations of Brinkhoff et al.:

1. *search-space restriction*: entries of one node farther than the
   maximum distance from the other node's region cannot contribute;
2. *plane sweep*: both entry lists are sorted along one axis and only
   entries whose projections come within ``D_max`` of each other are
   paired -- the paper's modification of the intersection-only sweep,
   which must look ahead to ``x2 + D_max`` instead of ``x2``.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

from repro.geometry.metrics import Metric
from repro.geometry.rectangle import Rect

_INF = float("inf")


def restrict_entries(
    entries: Sequence,
    other_region: Rect,
    metric: Metric,
    max_distance: float,
) -> List:
    """Keep only entries within ``max_distance`` of ``other_region``.

    This is the "marking" step: entries whose MINDIST to the space
    spanned by the other node exceeds the maximum distance can never
    appear in a result pair.
    """
    if max_distance == _INF:
        return list(entries)
    return [
        e
        for e in entries
        if metric.mindist_rect_rect(e.rect, other_region) <= max_distance
    ]


def sweep_pairs(
    entries1: Sequence,
    entries2: Sequence,
    max_gap: float,
    axis: int = 0,
) -> Iterator[Tuple[object, object]]:
    """Yield entry pairs whose ``axis`` projections approach within
    ``max_gap``; every qualifying pair is produced exactly once.

    With ``max_gap = 0`` this degenerates to the intersection-join
    sweep of Brinkhoff et al.; the distance join sweeps along the axis
    up to ``hi + D_max`` (Figure 4: ``r1`` must also be checked against
    ``s3``, not only the projection-intersecting ``s1`` and ``s2``).
    """
    if max_gap == _INF:
        for e1 in entries1:
            for e2 in entries2:
                yield e1, e2
        return

    a = sorted(entries1, key=lambda e: e.rect.lo[axis])
    b = sorted(entries2, key=lambda e: e.rect.lo[axis])
    i = j = 0
    while i < len(a) and j < len(b):
        if a[i].rect.lo[axis] <= b[j].rect.lo[axis]:
            reach = a[i].rect.hi[axis] + max_gap
            k = j
            while k < len(b) and b[k].rect.lo[axis] <= reach:
                yield a[i], b[k]
                k += 1
            i += 1
        else:
            reach = b[j].rect.hi[axis] + max_gap
            k = i
            while k < len(a) and a[k].rect.lo[axis] <= reach:
                yield a[k], b[j]
                k += 1
            j += 1


def sweep_index_pairs(
    lo1: Sequence[float],
    hi1: Sequence[float],
    lo2: Sequence[float],
    hi2: Sequence[float],
    max_gap: float,
) -> Iterator[Tuple[int, int]]:
    """Index-space variant of :func:`sweep_pairs` over parallel
    coordinate lists (one sweep axis, already projected).

    Yields ``(i, j)`` position pairs in *exactly* the order
    :func:`sweep_pairs` yields the corresponding entry pairs -- both
    use a stable sort on the same ``lo`` keys and the identical
    two-pointer lookahead -- which is what lets the batch-kernel
    expansion preserve the scalar path's tie-break sequence.
    """
    n1 = len(lo1)
    n2 = len(lo2)
    if max_gap == _INF:
        for i in range(n1):
            for j in range(n2):
                yield i, j
        return

    a = sorted(range(n1), key=lo1.__getitem__)
    b = sorted(range(n2), key=lo2.__getitem__)
    i = j = 0
    while i < n1 and j < n2:
        ai = a[i]
        bj = b[j]
        if lo1[ai] <= lo2[bj]:
            reach = hi1[ai] + max_gap
            k = j
            while k < n2 and lo2[b[k]] <= reach:
                yield ai, b[k]
                k += 1
            i += 1
        else:
            reach = hi2[bj] + max_gap
            k = i
            while k < n1 and lo1[a[k]] <= reach:
                yield a[k], bj
                k += 1
            j += 1
