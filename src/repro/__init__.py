"""repro -- Incremental distance join algorithms for spatial databases.

A complete reproduction of Hjaltason & Samet, *Incremental Distance
Join Algorithms for Spatial Databases* (SIGMOD 1998): the incremental
distance join and distance semi-join operators, the R*-tree substrate
they run on, the paper's engineering strategies (tie-breaking, node
policies, distance ranges, maximum-distance estimation, the hybrid
memory/disk priority queue, semi-join filters), the non-incremental
baselines, synthetic TIGER-like data sets, and a small SQL dialect with
``DISTANCE JOIN`` / ``STOP AFTER``.  On top of the paper, the
:mod:`repro.parallel` package runs the join partitioned across worker
threads or processes with an order-preserving stream merge (SQL hint
``PARALLEL <n>``, CLI flag ``--workers``).

Quickstart
----------
>>> from repro import Point, RStarTree, IncrementalDistanceJoin
>>> a = RStarTree(dim=2)
>>> b = RStarTree(dim=2)
>>> for x in range(5):
...     _ = a.insert_point((float(x), 0.0))
...     _ = b.insert_point((float(x) + 0.25, 1.0))
>>> join = IncrementalDistanceJoin(a, b)
>>> first = next(join)
>>> round(first.distance, 4)
1.0308
"""

from repro.errors import (
    ConsistencyError,
    GeometryError,
    JoinError,
    QueryError,
    QuerySyntaxError,
    ReproError,
    StorageError,
    TreeError,
    TreeInvariantError,
)
from repro.geometry import (
    CHESSBOARD,
    EUCLIDEAN,
    MANHATTAN,
    LineSegment,
    Metric,
    MinkowskiMetric,
    Point,
    PointObject,
    Polygon,
    Rect,
    SpatialObject,
)
from repro.rtree import (
    GuttmanRTree,
    RStarTree,
    bulk_load_str,
    incremental_nearest,
    nearest_neighbors,
    nearest_neighbors_bnb,
    range_search,
    validate_tree,
)
from repro.core import (
    BASIC,
    BREADTH_FIRST,
    DEPTH_FIRST,
    DMAX_GLOBAL_ALL,
    DMAX_GLOBAL_NODES,
    DMAX_LOCAL,
    DMAX_NONE,
    EVEN,
    INSIDE1,
    INSIDE2,
    OUTSIDE,
    SIMULTANEOUS,
    IncrementalDistanceJoin,
    IncrementalDistanceSemiJoin,
    IntersectionJoin,
    JoinResult,
    KNearestNeighborJoin,
    ReverseDistanceJoin,
    ReverseDistanceSemiJoin,
    all_nearest_neighbors,
    closest_pair,
    closest_pairs,
    intersection_join,
)
from repro.parallel import (
    ParallelDistanceJoin,
    ParallelDistanceSemiJoin,
)
from repro.util.counters import CounterRegistry, CounterSnapshot

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "GeometryError",
    "StorageError",
    "TreeError",
    "TreeInvariantError",
    "QueryError",
    "QuerySyntaxError",
    "JoinError",
    "ConsistencyError",
    # geometry
    "Point",
    "Rect",
    "Metric",
    "MinkowskiMetric",
    "EUCLIDEAN",
    "MANHATTAN",
    "CHESSBOARD",
    "SpatialObject",
    "PointObject",
    "LineSegment",
    "Polygon",
    # r-tree
    "RStarTree",
    "GuttmanRTree",
    "bulk_load_str",
    "range_search",
    "nearest_neighbors",
    "nearest_neighbors_bnb",
    "incremental_nearest",
    "validate_tree",
    # joins
    "IncrementalDistanceJoin",
    "IncrementalDistanceSemiJoin",
    "ReverseDistanceJoin",
    "ReverseDistanceSemiJoin",
    "JoinResult",
    "KNearestNeighborJoin",
    "closest_pair",
    "closest_pairs",
    "all_nearest_neighbors",
    "IntersectionJoin",
    "intersection_join",
    "BASIC",
    "EVEN",
    "SIMULTANEOUS",
    "DEPTH_FIRST",
    "BREADTH_FIRST",
    "OUTSIDE",
    "INSIDE1",
    "INSIDE2",
    "DMAX_NONE",
    "DMAX_LOCAL",
    "DMAX_GLOBAL_NODES",
    "DMAX_GLOBAL_ALL",
    # parallel engine
    "ParallelDistanceJoin",
    "ParallelDistanceSemiJoin",
    # misc
    "CounterRegistry",
    "CounterSnapshot",
]
