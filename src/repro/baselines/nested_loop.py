"""Nested-loop distance join (paper Section 4.1.4).

Computes the distance between every pair of objects and sorts.  The
paper keeps the inner relation entirely in memory to avoid re-reads,
ran it for over 3.5 hours on the full data sets, and notes a real
implementation would additionally have to store and sort the result --
this implementation does the full job (including the sort) because the
benchmark uses scaled data sets.
"""

from __future__ import annotations

import heapq
from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.core.distance_join import JoinResult
from repro.geometry.metrics import EUCLIDEAN, Metric
from repro.geometry.point import Point
from repro.util.counters import CounterRegistry

_INF = float("inf")


def _distance(metric: Metric, a: Any, b: Any) -> float:
    if isinstance(a, Point) and isinstance(b, Point):
        return metric.distance(a, b)
    return a.distance_to(b)


def nested_loop_join(
    outer: Sequence[Any],
    inner: Sequence[Any],
    metric: Metric = EUCLIDEAN,
    min_distance: float = 0.0,
    max_distance: float = _INF,
    max_pairs: Optional[int] = None,
    counters: Optional[CounterRegistry] = None,
) -> List[JoinResult]:
    """All (in-range) object pairs ordered by distance, brute force.

    ``max_pairs`` keeps only the k closest pairs (maintained in a
    bounded heap, so memory stays O(k) rather than O(n*m)); without it
    the full Cartesian product is materialized and sorted -- exactly
    the cost profile the paper's Section 4.1.4 measures.
    """
    counters = counters if counters is not None else CounterRegistry()

    if max_pairs is not None:
        # Bounded: keep the k smallest in a max-heap of size k.
        heap: List[Tuple[float, int, int, Any, Any]] = []
        for i, a in enumerate(outer):
            for j, b in enumerate(inner):
                d = _distance(metric, a, b)
                counters.add("dist_calcs")
                if not (min_distance <= d <= max_distance):
                    continue
                item = (-d, i, j, a, b)
                if len(heap) < max_pairs:
                    heapq.heappush(heap, item)
                elif d < -heap[0][0]:
                    heapq.heapreplace(heap, item)
        ranked = sorted(heap, key=lambda t: -t[0])
        return [
            JoinResult(-neg_d, i, a, j, b)
            for neg_d, i, j, a, b in ranked
        ]

    results: List[JoinResult] = []
    for i, a in enumerate(outer):
        for j, b in enumerate(inner):
            d = _distance(metric, a, b)
            counters.add("dist_calcs")
            if min_distance <= d <= max_distance:
                results.append(JoinResult(d, i, a, j, b))
    results.sort(key=lambda r: r.distance)
    return results


def nested_loop_join_iter(
    outer: Sequence[Any],
    inner: Sequence[Any],
    metric: Metric = EUCLIDEAN,
    counters: Optional[CounterRegistry] = None,
) -> Iterator[JoinResult]:
    """Generator form: computes everything, sorts, then yields.

    Exists to make the contrast with the incremental algorithm vivid in
    benchmarks: the first result only appears after the entire
    Cartesian product has been evaluated and sorted.
    """
    for result in nested_loop_join(
        outer, inner, metric=metric, counters=counters
    ):
        yield result
