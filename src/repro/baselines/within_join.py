"""Spatial join with a ``within`` predicate, plus a final sort
(paper Section 4.1.4's discussed alternative).

A synchronized depth-first traversal of the two R-trees prunes subtree
pairs whose MINDIST exceeds the distance bound -- the classic R-tree
spatial-join of Brinkhoff et al. generalized from ``intersects`` to
``within(d)`` -- then the qualifying object pairs are sorted by
distance.  The paper notes two drawbacks this implementation makes
measurable: the whole result must be computed and sorted before the
first pair can be reported, and if the distance guess is too small the
join must be re-run with a larger one (:func:`within_join_adaptive`).
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.core.distance_join import JoinResult
from repro.core.planesweep import sweep_pairs
from repro.geometry.metrics import EUCLIDEAN, Metric
from repro.geometry.point import Point
from repro.rtree.base import RTreeBase
from repro.util.counters import CounterRegistry


def _object_distance(metric: Metric, a: Any, b: Any) -> float:
    if isinstance(a, Point) and isinstance(b, Point):
        return metric.distance(a, b)
    if hasattr(a, "distance_to"):
        return a.distance_to(b)
    raise TypeError(f"cannot compute distance for {type(a).__name__}")


def within_join(
    tree1: RTreeBase,
    tree2: RTreeBase,
    distance: float,
    metric: Metric = EUCLIDEAN,
    min_distance: float = 0.0,
    counters: Optional[CounterRegistry] = None,
) -> List[JoinResult]:
    """All object pairs within ``distance``, sorted by distance."""
    counters = counters if counters is not None else tree1.counters
    results: List[JoinResult] = []
    if len(tree1) == 0 or len(tree2) == 0:
        return results

    stack: List[Tuple[int, int]] = [(tree1.root_id, tree2.root_id)]
    while stack:
        id1, id2 = stack.pop()
        node1 = tree1.read_node(id1)
        node2 = tree2.read_node(id2)
        # Descend the shallower node when levels differ (even traversal).
        if node1.level > 0 and (node1.level >= node2.level):
            for entry in node1.entries:
                counters.add("bound_calcs")
                if metric.mindist_rect_rect(
                    entry.rect, node2.mbr()
                ) <= distance:
                    stack.append((entry.child_id, id2))
            continue
        if node2.level > 0:
            for entry in node2.entries:
                counters.add("bound_calcs")
                if metric.mindist_rect_rect(
                    node1.mbr(), entry.rect
                ) <= distance:
                    stack.append((id1, entry.child_id))
            continue
        # Both leaves: plane sweep over the entries.
        for e1, e2 in sweep_pairs(node1.entries, node2.entries, distance):
            counters.add("dist_calcs")
            d = _object_distance(metric, e1.obj, e2.obj)
            if min_distance <= d <= distance:
                results.append(JoinResult(d, e1.oid, e1.obj, e2.oid, e2.obj))

    results.sort(key=lambda r: r.distance)
    return results


def within_join_adaptive(
    tree1: RTreeBase,
    tree2: RTreeBase,
    max_pairs: int,
    initial_distance: float,
    metric: Metric = EUCLIDEAN,
    growth: float = 2.0,
    counters: Optional[CounterRegistry] = None,
) -> List[JoinResult]:
    """Guess-and-restart use of :func:`within_join` to get ``max_pairs``
    closest pairs when no distance bound is known.

    This is the paper's argument for *not* benchmarking the spatial
    join as a closest-pairs competitor: each undershoot re-runs the
    whole join with a ``growth``-times larger distance.
    """
    counters = counters if counters is not None else tree1.counters
    distance = initial_distance
    upper = len(tree1) * len(tree2)
    target = min(max_pairs, upper)
    while True:
        results = within_join(
            tree1, tree2, distance, metric=metric, counters=counters
        )
        if len(results) >= target:
            return results[:max_pairs]
        counters.add("within_join_restarts")
        distance *= growth
