"""Distance semi-join via repeated nearest-neighbour search
(paper Section 4.2.3).

For every object of the outer relation, run a nearest-neighbour query
against the inner relation's R-tree, collect all (object, neighbour,
distance) triples, and sort by distance.  Unlike the incremental
algorithm, nothing is produced until every NN query has completed, and
a distance value must be stored for every outer object -- the paper
uses this to contextualize the "GlobalAll" strategy's storage cost.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from repro.core.distance_join import JoinResult
from repro.geometry.metrics import EUCLIDEAN, Metric
from repro.rtree.base import RTreeBase
from repro.rtree.queries import nearest_neighbors
from repro.util.counters import CounterRegistry


def nn_semi_join(
    outer: Sequence[Tuple[int, Any]],
    inner_tree: RTreeBase,
    metric: Metric = EUCLIDEAN,
    max_pairs: Optional[int] = None,
    counters: Optional[CounterRegistry] = None,
) -> List[JoinResult]:
    """The distance semi-join computed non-incrementally.

    Parameters
    ----------
    outer:
        ``(oid, object)`` pairs of the outer relation (e.g. from
        ``[(e.oid, e.obj) for e in tree.items()]``).
    inner_tree:
        R-tree over the inner relation.
    max_pairs:
        Truncate the sorted result (the NN queries still all run --
        that is the point of the comparison).
    """
    __ = counters  # the inner tree's own registry counts the work
    results: List[JoinResult] = []
    for oid, obj in outer:
        neighbors = nearest_neighbors(inner_tree, obj, k=1, metric=metric)
        if not neighbors:
            continue
        nn = neighbors[0]
        results.append(JoinResult(nn.distance, oid, obj, nn.oid, nn.obj))
    results.sort(key=lambda r: r.distance)
    if max_pairs is not None:
        results = results[:max_pairs]
    return results
