"""Non-incremental baselines the paper compares against.

- :func:`nested_loop_join` -- the brute-force distance join of
  Section 4.1.4 (compute all pairwise distances, sort);
- :func:`nn_semi_join` -- the nearest-neighbour implementation of the
  distance semi-join of Section 4.2.3 (one NN search per outer object,
  then sort);
- :func:`within_join` -- a spatial join with a ``within`` predicate
  followed by a sort, the alternative the paper discusses for
  distance-bounded joins.
"""

from repro.baselines.nested_loop import nested_loop_join
from repro.baselines.nn_semijoin import nn_semi_join
from repro.baselines.within_join import within_join

__all__ = ["nested_loop_join", "nn_semi_join", "within_join"]
