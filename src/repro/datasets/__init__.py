"""Data set generators.

The paper evaluates on TIGER/Line centroids of the Washington, DC area
(*Water*: 37,495 points; *Roads*: 200,482 points).  TIGER files are
not available in this offline reproduction, so
:mod:`repro.datasets.tiger_like` synthesizes point sets with the same
statistical character (skewed, polyline-clustered, 1:5.35 cardinality
ratio) at configurable scale.  :mod:`repro.datasets.synthetic`
provides uniform and Gaussian-cluster generators for tests.
"""

from repro.datasets.synthetic import (
    gaussian_clusters,
    grid_points,
    uniform_points,
    uniform_rects,
)
from repro.datasets.tiger import (
    read_centroids,
    read_road_centroids,
    read_water_centroids,
)
from repro.datasets.tiger_like import (
    ROADS_FULL_SIZE,
    WATER_FULL_SIZE,
    roads_points,
    roads_segments,
    water_points,
    water_segments,
)

__all__ = [
    "uniform_points",
    "uniform_rects",
    "gaussian_clusters",
    "grid_points",
    "water_points",
    "roads_points",
    "water_segments",
    "roads_segments",
    "read_centroids",
    "read_water_centroids",
    "read_road_centroids",
    "WATER_FULL_SIZE",
    "ROADS_FULL_SIZE",
]
