"""Reader for real TIGER/Line Record Type 1 files.

The paper derives its data from the US Census Bureau's TIGER/Line
files: *Water* is the centroids of water features and *Roads* the
centroids of road features of the Washington, DC area.  Those files
are not shipped with this reproduction (the benchmarks use the
synthetic stand-ins in :mod:`repro.datasets.tiger_like`), but anyone
who has them can load the paper's exact inputs with this module.

Record Type 1 ("complete chain basic data record") is a fixed-width
228-byte format; the fields used here (1-based column positions from
the TIGER/Line technical documentation):

========  =======  ==========================================
columns   name     meaning
========  =======  ==========================================
1         RT       record type, ``'1'``
56-58     CFCC     census feature class code (e.g. ``A41``)
191-200   FRLONG   start longitude, signed, 6 implied decimals
201-209   FRLAT    start latitude, signed, 6 implied decimals
210-219   TOLONG   end longitude
220-228   TOLAT    end latitude
========  =======  ==========================================

A feature's *centroid* is approximated, as in the paper's setup, by
the midpoint of the chain's endpoints.  CFCC class letters select the
feature kind: ``A`` = roads, ``H`` = hydrography (water).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional

from repro.errors import ReproError
from repro.geometry.point import Point

#: Minimum line length to hold the coordinate fields.
_RECORD_LENGTH = 228

#: CFCC class letters for the paper's two data sets.
ROAD_CLASS = "A"
WATER_CLASS = "H"


class TigerFormatError(ReproError):
    """A TIGER/Line record could not be parsed."""


def _parse_coordinate(field: str, implied_decimals: int = 6) -> float:
    """Parse a signed fixed-point TIGER coordinate field."""
    try:
        return int(field.strip()) / (10 ** implied_decimals)
    except ValueError as error:
        raise TigerFormatError(
            f"bad coordinate field {field!r}"
        ) from error


def parse_rt1_line(line: str) -> Optional[dict]:
    """Parse one Record Type 1 line; None for other record types.

    Returns a dict with ``cfcc``, ``start`` (Point), ``end`` (Point),
    and ``centroid`` (Point, the endpoint midpoint).  Coordinates are
    (longitude, latitude) to match the x/y convention.
    """
    if not line or line[0] != "1":
        return None
    if len(line.rstrip("\r\n")) < _RECORD_LENGTH:
        raise TigerFormatError(
            f"record type 1 line shorter than {_RECORD_LENGTH} bytes "
            f"({len(line.rstrip())})"
        )
    cfcc = line[55:58].strip()
    from_long = _parse_coordinate(line[190:200])
    from_lat = _parse_coordinate(line[200:209])
    to_long = _parse_coordinate(line[209:219])
    to_lat = _parse_coordinate(line[219:228])
    start = Point((from_long, from_lat))
    end = Point((to_long, to_lat))
    centroid = Point((
        (from_long + to_long) / 2.0,
        (from_lat + to_lat) / 2.0,
    ))
    return {
        "cfcc": cfcc,
        "start": start,
        "end": end,
        "centroid": centroid,
    }


def iter_rt1(lines: Iterable[str]) -> Iterator[dict]:
    """Yield parsed Record Type 1 entries from an iterable of lines."""
    for line in lines:
        record = parse_rt1_line(line)
        if record is not None:
            yield record


def read_centroids(
    path: str, feature_class: Optional[str] = None
) -> List[Point]:
    """Centroids of the chains in a TIGER/Line ``.RT1`` file.

    ``feature_class`` filters by the CFCC class letter --
    :data:`ROAD_CLASS` (``"A"``) or :data:`WATER_CLASS` (``"H"``) for
    the paper's Roads/Water sets; None keeps every feature.
    """
    centroids: List[Point] = []
    with open(path, encoding="latin-1") as handle:
        for record in iter_rt1(handle):
            if (
                feature_class is not None
                and not record["cfcc"].startswith(feature_class)
            ):
                continue
            centroids.append(record["centroid"])
    return centroids


def read_water_centroids(path: str) -> List[Point]:
    """The paper's *Water* set: hydrography-feature centroids."""
    return read_centroids(path, WATER_CLASS)


def read_road_centroids(path: str) -> List[Point]:
    """The paper's *Roads* set: road-feature centroids."""
    return read_centroids(path, ROAD_CLASS)
