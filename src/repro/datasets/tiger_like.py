"""Synthetic stand-ins for the paper's TIGER/Line data sets.

The paper joins two point sets derived from the TIGER/Line files of
the Washington, DC area: *Water* (centroids of water features, 37,495
points) and *Roads* (centroids of road features, 200,482 points).
Those files are unavailable offline, so this module synthesizes point
sets with the properties that actually drive the algorithms' behaviour:

- **Roads**: road-feature centroids lie on a dense street network.  We
  generate an urban-gravity grid of street polylines (denser near a
  few "downtown" attractors) and sample segment midpoints with jitter,
  producing the strongly linear, locally dense skew of road centroids.
- **Water**: water-feature centroids follow rivers and shorelines plus
  scattered ponds.  We sample points along a handful of meandering
  river polylines plus a sparse scattered component.
- The two sets overlap the same universe, so near-zero join distances
  exist (the paper notes one pair at distance 0 -- we plant one
  coincident point pair to reproduce that detail).
- The |Roads| / |Water| cardinality ratio of ~5.35 is preserved at any
  scale.

Everything is deterministic given the seed.
"""

from __future__ import annotations

import math
import random
from typing import List, Tuple

from repro.geometry.point import Point
from repro.util.validation import require

#: Cardinalities of the paper's full data sets.
WATER_FULL_SIZE = 37495
ROADS_FULL_SIZE = 200482

#: Universe: a square roughly playing the role of the DC-area extent.
EXTENT = 10000.0

_DEFAULT_WATER_SEED = 1998
_DEFAULT_ROADS_SEED = 2642

#: One point planted in both sets so that a distance-0 join pair exists
#: (the paper observes exactly one such pair in its data,
#: Section 4.1.1, which is what makes "DepthFirst" faster than
#: "BreadthFirst" for retrieving the very first pair).
SHARED_POINT = Point((4321.987, 1234.567))


def _meander(
    rng: random.Random, start: Tuple[float, float], heading: float,
    steps: int, step_len: float, wobble: float,
) -> List[Tuple[float, float]]:
    """A random meandering polyline (used for rivers)."""
    x, y = start
    vertices = [(x, y)]
    for __ in range(steps):
        heading += rng.uniform(-wobble, wobble)
        x += step_len * math.cos(heading)
        y += step_len * math.sin(heading)
        x = min(EXTENT, max(0.0, x))
        y = min(EXTENT, max(0.0, y))
        vertices.append((x, y))
    return vertices


def _sample_polyline(
    rng: random.Random,
    vertices: List[Tuple[float, float]],
    count: int,
    jitter: float,
) -> List[Point]:
    """``count`` jittered points along a polyline, by arc length."""
    segments = []
    total = 0.0
    for (x1, y1), (x2, y2) in zip(vertices, vertices[1:]):
        length = math.hypot(x2 - x1, y2 - y1)
        if length > 0.0:
            segments.append(((x1, y1), (x2, y2), length))
            total += length
    points: List[Point] = []
    if not segments or total == 0.0:
        return points
    for __ in range(count):
        target = rng.uniform(0.0, total)
        for (x1, y1), (x2, y2), length in segments:
            if target <= length:
                t = target / length
                x = x1 + t * (x2 - x1) + rng.gauss(0.0, jitter)
                y = y1 + t * (y2 - y1) + rng.gauss(0.0, jitter)
                points.append(Point((
                    min(EXTENT, max(0.0, x)),
                    min(EXTENT, max(0.0, y)),
                )))
                break
            target -= length
        else:  # numeric slack: drop on the final vertex
            x, y = segments[-1][1]
            points.append(Point((x, y)))
    return points


def water_points(
    count: int = WATER_FULL_SIZE // 10,
    seed: int = _DEFAULT_WATER_SEED,
) -> List[Point]:
    """Water-feature centroids: rivers, a shoreline, scattered ponds.

    The default ``count`` is the paper's cardinality scaled 1:10, the
    scale the benchmarks use (pure-Python substrate); pass
    ``WATER_FULL_SIZE`` for the full-size set.
    """
    require(count >= 1, "count must be at least 1")
    rng = random.Random(seed)
    points: List[Point] = []

    river_share = int(count * 0.55)
    shore_share = int(count * 0.2)
    pond_share = count - river_share - shore_share

    # A few major rivers crossing the universe.
    rivers = 4
    for r in range(rivers):
        start = (rng.uniform(0, EXTENT * 0.2), rng.uniform(0, EXTENT))
        heading = rng.uniform(-0.5, 0.5)
        polyline = _meander(
            rng, start, heading, steps=60, step_len=EXTENT / 50.0,
            wobble=0.45,
        )
        quota = river_share // rivers
        if r == rivers - 1:
            quota = river_share - quota * (rivers - 1)
        points.extend(
            _sample_polyline(rng, polyline, quota, jitter=EXTENT / 400.0)
        )

    # A shoreline hugging one border.
    shoreline = _meander(
        rng, (0.0, rng.uniform(0, EXTENT * 0.3)), heading=0.2,
        steps=80, step_len=EXTENT / 70.0, wobble=0.3,
    )
    points.extend(
        _sample_polyline(rng, shoreline, shore_share, jitter=EXTENT / 300.0)
    )

    # Scattered ponds.
    for __ in range(pond_share):
        points.append(Point((
            rng.uniform(0.0, EXTENT), rng.uniform(0.0, EXTENT)
        )))

    points = points[:count]
    points[0] = SHARED_POINT
    return points


def roads_points(
    count: int = ROADS_FULL_SIZE // 10,
    seed: int = _DEFAULT_ROADS_SEED,
) -> List[Point]:
    """Road-feature centroids: an urban-gravity street grid.

    Street segments are denser near a handful of downtown attractors;
    centroids are segment midpoints with jitter.  The first generated
    point coincides with a water point from the default
    :func:`water_points` set so that a distance-0 join pair exists,
    matching the paper's observation in Section 4.1.1.
    """
    require(count >= 1, "count must be at least 1")
    rng = random.Random(seed)
    points: List[Point] = []

    # Downtown attractors pull street density toward them.
    downtowns = [
        (rng.uniform(EXTENT * 0.2, EXTENT * 0.8),
         rng.uniform(EXTENT * 0.2, EXTENT * 0.8))
        for __ in range(3)
    ]

    def near_downtown() -> Tuple[float, float]:
        cx, cy = downtowns[rng.randrange(len(downtowns))]
        radius = abs(rng.gauss(0.0, EXTENT * 0.15))
        angle = rng.uniform(0.0, 2.0 * math.pi)
        return (
            min(EXTENT, max(0.0, cx + radius * math.cos(angle))),
            min(EXTENT, max(0.0, cy + radius * math.sin(angle))),
        )

    urban_share = int(count * 0.7)
    rural_share = count - urban_share

    # Urban component: short axis-aligned street segments around the
    # attractors; the centroid is the jittered midpoint.
    block = EXTENT / 120.0
    for __ in range(urban_share):
        x, y = near_downtown()
        # Snap toward a street grid to create linear alignment.
        if rng.random() < 0.5:
            x = round(x / block) * block + rng.gauss(0.0, block * 0.08)
        else:
            y = round(y / block) * block + rng.gauss(0.0, block * 0.08)
        points.append(Point((
            min(EXTENT, max(0.0, x)), min(EXTENT, max(0.0, y))
        )))

    # Rural component: sparse country roads as long polylines.
    rural_roads = max(1, rural_share // 400)
    produced = 0
    for r in range(rural_roads):
        start = (rng.uniform(0, EXTENT), rng.uniform(0, EXTENT))
        polyline = _meander(
            rng, start, rng.uniform(0, 2 * math.pi), steps=30,
            step_len=EXTENT / 40.0, wobble=0.25,
        )
        quota = rural_share // rural_roads
        if r == rural_roads - 1:
            quota = rural_share - produced
        points.extend(
            _sample_polyline(rng, polyline, quota, jitter=EXTENT / 500.0)
        )
        produced += quota

    points = points[:count]
    # Plant the distance-0 pair against the water set.
    points[0] = SHARED_POINT
    return points


def _segments_along(
    rng: random.Random,
    polyline: List[Tuple[float, float]],
    count: int,
    length: float,
    jitter: float,
) -> List["LineSegment"]:
    """``count`` short segments laid along a polyline with jitter."""
    from repro.geometry.shapes import LineSegment

    anchors = _sample_polyline(rng, polyline, count, jitter)
    segments = []
    for anchor in anchors:
        angle = rng.uniform(0.0, 2.0 * math.pi)
        half = length / 2.0
        dx, dy = half * math.cos(angle), half * math.sin(angle)
        a = Point((
            min(EXTENT, max(0.0, anchor.x - dx)),
            min(EXTENT, max(0.0, anchor.y - dy)),
        ))
        b = Point((
            min(EXTENT, max(0.0, anchor.x + dx)),
            min(EXTENT, max(0.0, anchor.y + dy)),
        ))
        segments.append(LineSegment(a, b))
    return segments


def water_segments(
    count: int = 1000, seed: int = _DEFAULT_WATER_SEED
) -> List["LineSegment"]:
    """Water features as short line *segments* (objects with extent).

    The paper's experiments use centroids and leave line data as
    future work (Section 5); these segment sets exercise that
    extension -- the joins run on them with exact segment distances
    and MINMAXDIST-bearing bounding rectangles.
    """
    require(count >= 1, "count must be at least 1")
    rng = random.Random(seed + 17)
    rivers = 4
    segments: List = []
    for r in range(rivers):
        start = (rng.uniform(0, EXTENT * 0.2), rng.uniform(0, EXTENT))
        polyline = _meander(
            rng, start, rng.uniform(-0.5, 0.5), steps=60,
            step_len=EXTENT / 50.0, wobble=0.45,
        )
        quota = count // rivers
        if r == rivers - 1:
            quota = count - len(segments)
        segments.extend(_segments_along(
            rng, polyline, quota, length=EXTENT / 80.0,
            jitter=EXTENT / 400.0,
        ))
    return segments[:count]


def roads_segments(
    count: int = 5000, seed: int = _DEFAULT_ROADS_SEED
) -> List["LineSegment"]:
    """Road features as short line segments (see :func:`water_segments`)."""
    require(count >= 1, "count must be at least 1")
    rng = random.Random(seed + 17)
    roads = max(1, count // 250)
    segments: List = []
    for r in range(roads):
        start = (rng.uniform(0, EXTENT), rng.uniform(0, EXTENT))
        polyline = _meander(
            rng, start, rng.uniform(0, 2 * math.pi), steps=30,
            step_len=EXTENT / 40.0, wobble=0.25,
        )
        quota = count // roads
        if r == roads - 1:
            quota = count - len(segments)
        segments.extend(_segments_along(
            rng, polyline, quota, length=EXTENT / 120.0,
            jitter=EXTENT / 500.0,
        ))
    return segments[:count]
