"""Seeded synthetic point/rectangle generators for tests and benches."""

from __future__ import annotations

import math
import random
from typing import List, Optional, Sequence, Tuple

from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.util.validation import require, require_positive

#: Default square universe, loosely "degrees times 10^4" like TIGER.
DEFAULT_EXTENT = 10000.0


def uniform_points(
    count: int,
    seed: int,
    dim: int = 2,
    extent: float = DEFAULT_EXTENT,
) -> List[Point]:
    """``count`` points uniform in ``[0, extent]^dim`` (deterministic)."""
    require_positive(extent, "extent")
    rng = random.Random(seed)
    return [
        Point(rng.uniform(0.0, extent) for __ in range(dim))
        for __ in range(count)
    ]


def uniform_rects(
    count: int,
    seed: int,
    dim: int = 2,
    extent: float = DEFAULT_EXTENT,
    max_side: Optional[float] = None,
) -> List[Rect]:
    """``count`` random rectangles with sides up to ``max_side``
    (default: 1% of the extent)."""
    require_positive(extent, "extent")
    if max_side is None:
        max_side = extent / 100.0
    rng = random.Random(seed)
    rects = []
    for __ in range(count):
        lo = [rng.uniform(0.0, extent - max_side) for _i in range(dim)]
        hi = [c + rng.uniform(0.0, max_side) for c in lo]
        rects.append(Rect(lo, hi))
    return rects


def gaussian_clusters(
    count: int,
    seed: int,
    clusters: int = 10,
    dim: int = 2,
    extent: float = DEFAULT_EXTENT,
    spread: Optional[float] = None,
) -> List[Point]:
    """``count`` points in ``clusters`` Gaussian blobs (clipped to the
    universe); ``spread`` is the blob standard deviation (default 2% of
    the extent)."""
    require(clusters >= 1, "clusters must be at least 1")
    if spread is None:
        spread = extent * 0.02
    rng = random.Random(seed)
    centers = [
        [rng.uniform(0.0, extent) for __ in range(dim)]
        for __ in range(clusters)
    ]
    points = []
    for __ in range(count):
        center = centers[rng.randrange(clusters)]
        coords = [
            min(extent, max(0.0, rng.gauss(c, spread))) for c in center
        ]
        points.append(Point(coords))
    return points


def grid_points(
    per_side: int,
    dim: int = 2,
    extent: float = DEFAULT_EXTENT,
    jitter: float = 0.0,
    seed: int = 0,
) -> List[Point]:
    """A regular ``per_side^dim`` grid, optionally jittered.

    Grids maximize distance ties, which exercises the tie-breaking
    policies; tests rely on this.
    """
    require(per_side >= 1, "per_side must be at least 1")
    rng = random.Random(seed)
    step = extent / max(1, per_side - 1) if per_side > 1 else 0.0

    def coord(i: int) -> float:
        base = i * step
        if jitter:
            base += rng.uniform(-jitter, jitter)
        return min(extent, max(0.0, base))

    points: List[Point] = []
    indices: List[Tuple[int, ...]] = [()]  # type: ignore[assignment]
    for __ in range(dim):
        indices = [  # type: ignore[assignment]
            prefix + (i,) for prefix in indices for i in range(per_side)
        ]
    for index in indices:
        points.append(Point(coord(i) for i in index))
    return points


def scale_counts(
    sizes: Sequence[int], scale: float
) -> List[int]:
    """Scale a list of data set sizes, keeping each at least 1."""
    require(scale > 0.0, "scale must be positive")
    return [max(1, int(math.ceil(s * scale))) for s in sizes]
