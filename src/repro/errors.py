"""Exception hierarchy for the ``repro`` library.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class GeometryError(ReproError):
    """Invalid geometric construction or operation.

    Raised, for example, when a rectangle is built with ``lo > hi`` in
    some dimension, or when two geometries of different dimensionality
    are combined.
    """


class DimensionMismatchError(GeometryError):
    """Two geometric arguments do not share the same dimensionality."""

    def __init__(self, expected: int, got: int) -> None:
        super().__init__(
            f"dimension mismatch: expected {expected}, got {got}"
        )
        self.expected = expected
        self.got = got


class StorageError(ReproError):
    """Problems in the simulated storage layer (pager / buffer pool)."""


class PageNotFoundError(StorageError):
    """A page id was requested that was never allocated or was freed."""

    def __init__(self, page_id: int) -> None:
        super().__init__(f"page {page_id} does not exist")
        self.page_id = page_id


class TreeError(ReproError):
    """R-tree structural errors (invalid fan-out, corrupt node, ...)."""


class TreeInvariantError(TreeError):
    """An R-tree structural invariant was found to be violated.

    Raised by :func:`repro.rtree.validate.validate_tree` when, e.g., a
    child rectangle is not contained in its parent entry's rectangle.
    """


class QueryError(ReproError):
    """Errors raised by the SQL-ish query layer (lexing/parsing/binding)."""


class QuerySyntaxError(QueryError):
    """The query text could not be parsed.

    Attributes
    ----------
    position:
        Character offset into the query string where the error was
        detected, or ``-1`` if unknown.
    """

    def __init__(self, message: str, position: int = -1) -> None:
        if position >= 0:
            message = f"{message} (at position {position})"
        super().__init__(message)
        self.position = position


class JoinError(ReproError):
    """Errors in the distance join / semi-join drivers."""


class KernelError(JoinError):
    """The requested batch-kernel configuration is unavailable.

    Raised when ``JoinSpec.kernel="vector"`` is requested but numpy is
    not importable (or disabled) or the metric has no bit-reproducible
    batch kernels; ``kernel="auto"`` falls back to scalar instead.
    """


class RestartRequired(JoinError):
    """Internal signal: aggressive max-distance estimation pruned too much.

    The paper (Section 2.2.4) notes that over-estimating the number of
    object pairs generated from a queue pair may make the estimated
    maximum distance too small, in which case the query must be
    restarted.  The join driver catches this exception and restarts
    transparently with a safe estimator.
    """


class CursorError(ReproError):
    """A suspended-execution cursor could not be saved or restored.

    Raised when a cursor blob has an unknown format or version, when
    it was taken against different input trees than the ones supplied
    at load time, when a component of the execution state is not
    serializable (e.g. a closure pair filter that was not re-supplied),
    or when an operator does not support suspension at all (the
    multiprocessing parallel join).
    """


class ServiceError(ReproError):
    """Errors raised by the preemptable join service layer.

    Covers session admission (service full), unknown or expired
    session ids, and attempts to evict a session whose operator only
    supports in-memory suspension.
    """


class LiveError(ReproError):
    """Errors raised by the standing-query (``repro.live``) layer.

    Covers specs a :class:`~repro.live.StandingJoin` cannot maintain
    incrementally (descending order, external pair filters, self
    joins, ...), updates against unknown or duplicate object ids, and
    out-of-band tree mutations that invalidate the maintained result
    (detected through ``RTreeBase._mutations``).
    """


class ConsistencyError(JoinError):
    """The supplied distance functions violate the consistency contract.

    The incremental algorithms are only correct when no pair can have a
    smaller distance than a pair that generated it.  Debug builds of the
    join (``check_consistency=True``) verify this at run time and raise
    this error on violation.
    """
